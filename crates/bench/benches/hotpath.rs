//! The per-run hot-path bench and gate, written to `BENCH_hotpath.json`.
//!
//! Four measurements, one per flattening in the hot-loop perf pass:
//!
//! 1. **Interner steady state** — the allocations-per-run proxy (the
//!    workspace forbids `unsafe_code`, so a counting global allocator is
//!    off the table): after one warm-up suite run, a full standard-suite
//!    run must intern **zero** new symbols — every path lookup in the
//!    walk/audit/fault-key loop is a table hit, not an allocation.
//! 2. **Oracle throughput** — events/sec through the standard detector
//!    set, streamed as one batched `observe_slice` dispatch (the
//!    production shape after batched audit appends) against the
//!    per-event dispatch it replaced, on the suite's combined event
//!    stream replicated past 50k events.
//! 3. **Suite wall-clock at pinned worker counts** — the eight-app
//!    standard suite, sequential against `with_workers(1/4/8)` through
//!    the sharded executor queue; every pooled verdict set must be
//!    byte-identical to the sequential baseline's.
//! 4. **Corpus wall-clock at pinned worker counts** — the 120-scenario
//!    corpus registered as one 120-campaign suite, sequential against
//!    pooled, plus the full 8-path differential sweep executed under
//!    `EPA_WORKERS=4` (zero divergences required).
//!
//! The parallel-speedup gate (pooled ≥ 1.5× sequential on the corpus
//! suite) is enforced only when the host reports ≥ 2 CPUs; on a
//! single-CPU host the bench records the measured ratio and the skip
//! reason instead of failing on physics.

use std::time::{Duration, Instant};

use epa_apps::{worlds, ScriptedApp};
use epa_core::campaign::run_once;
use epa_core::corpus::{run_corpus, synthesize, CorpusConfig, Scenario, DEFAULT_CORPUS_SEED};
use epa_core::engine::suite::SuiteReport;
use epa_core::engine::{executor, Session, Suite};
use epa_core::inject::InjectionHook;
use epa_sandbox::app::Application;
use epa_sandbox::audit::AuditLog;
use epa_sandbox::intern;
use epa_sandbox::policy::OracleSet;

/// The pinned worker counts every pooled measurement runs at.
const WORKER_COUNTS: [usize; 3] = [1, 4, 8];

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_ns<O>(samples: usize, mut f: impl FnMut() -> O) -> u128 {
    let _ = std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_nanos()
}

/// One comparable line per record: identity plus the serialized verdicts.
/// Two suite reports with equal digests found exactly the same violations
/// on exactly the same jobs in exactly the same order — the sharded
/// queue's byte-identical-reassembly criterion.
fn verdict_set(report: &SuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in &report.reports {
        for rec in &r.records {
            let verdicts = serde_json::to_string(&rec.violations).expect("verdicts serialize");
            let _ = writeln!(
                out,
                "{}|{}|{}|{}|{verdicts}",
                r.app, rec.site, rec.occurrence, rec.fault_id
            );
        }
    }
    out
}

/// A fresh eight-application standard suite (fresh suite-scoped cache, so
/// repeated samples re-execute instead of replaying from memo).
fn fresh_suite() -> Suite {
    epa_apps::standard_suite().expect("valid specs")
}

/// The 120-scenario corpus as one 120-campaign suite (fresh cache per
/// call, same reasoning as [`fresh_suite`]).
fn corpus_suite(scenarios: &[Scenario]) -> Suite {
    let mut suite = Suite::new();
    for scenario in scenarios {
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        suite.register_session(ScriptedApp::for_scenario(scenario), Session::from_setup(setup));
    }
    suite
}

/// Runs the suite pooled at `workers` workers once, returning the verdict
/// digest and the executor's high-water worker count for the run.
fn pooled_once(suite: Suite, workers: usize) -> (String, usize) {
    executor::reset_peak_live_workers();
    let report = suite.with_workers(workers).execute();
    (verdict_set(&report), executor::peak_live_workers())
}

/// `[{"workers": …, "ns": …, "peak_live_workers": …}, …]` for the report.
fn worker_rows_json(rows: &[(usize, u128, usize)]) -> String {
    let body = rows
        .iter()
        .map(|(w, ns, peak)| format!("    {{\"workers\": {w}, \"ns\": {ns}, \"peak_live_workers\": {peak}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n  ]")
}

fn main() {
    let available = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);

    // ── 1. Interner steady state: the allocations-per-run proxy. ──────
    // One warm-up suite run populates the symbol table; a second full run
    // over the same worlds, faults and scripts must then intern nothing —
    // every path the hot loop touches resolves to an existing symbol.
    let _ = fresh_suite().execute();
    let before = intern::stats();
    let _ = fresh_suite().execute();
    let after = intern::stats();
    let steady_misses = after.misses - before.misses;
    let steady_hits = after.hits - before.hits;
    let steady_join_hits = after.join_hits - before.join_hits;
    assert_eq!(
        steady_misses, 0,
        "a warm standard-suite run must intern zero new symbols \
         (every miss is a per-run allocation the interner exists to remove)"
    );
    assert!(
        steady_hits > 0,
        "a suite run must exercise the interner (zero hits means the hot path stopped using it)"
    );

    // ── 2. Oracle throughput: batched dispatch vs per-event dispatch. ──
    // The suite's combined event stream (clean run + one injected run per
    // app), replicated past 50k events so oracle evaluation dominates.
    let cases: Vec<(&dyn Application, Session)> = vec![
        (&epa_apps::Lpr, Session::from_setup(worlds::lpr_world())),
        (&epa_apps::Turnin, Session::from_setup(worlds::turnin_world())),
        (&epa_apps::FontPurge, Session::from_setup(worlds::fontpurge_world())),
        (&epa_apps::NtLogon, Session::from_setup(worlds::ntlogon_world())),
        (&epa_apps::Fingerd, Session::from_setup(worlds::fingerd_world())),
        (&epa_apps::Authd, Session::from_setup(worlds::authd_world())),
        (&epa_apps::MailNotify, Session::from_setup(worlds::mailnotify_world())),
        (&epa_apps::Backupd, Session::from_setup(worlds::backupd_world())),
    ];
    let mut big = AuditLog::new();
    while big.len() < 50_000 {
        for (app, session) in &cases {
            let clean = run_once(session.setup(), *app, None);
            for (_, ev) in clean.os.audit.iter() {
                big.push(ev.clone());
            }
            if let Some(job) = session.plan(*app).jobs().first() {
                let (hook, _) = InjectionHook::new(job.clone());
                let injected = run_once(session.setup(), *app, Some(Box::new(hook)));
                for (_, ev) in injected.os.audit.iter() {
                    big.push(ev.clone());
                }
            }
        }
    }
    let oracle_samples = 15;
    let mut per_event_verdicts = 0usize;
    let per_event_ns = median_ns(oracle_samples, || {
        let mut set = OracleSet::standard();
        for (idx, event) in big.iter() {
            set.observe(idx, event);
        }
        per_event_verdicts = set.finish().len();
    });
    let mut batched_verdicts = 0usize;
    let batched_ns = median_ns(oracle_samples, || {
        let mut set = OracleSet::standard();
        set.observe_slice(0, big.events());
        batched_verdicts = set.finish().len();
    });
    assert_eq!(
        batched_verdicts, per_event_verdicts,
        "batched and per-event dispatch must produce identical verdict counts"
    );
    let events_per_sec = big.len() as f64 / (batched_ns as f64 / 1e9).max(1e-9);
    let oracle_ratio = per_event_ns as f64 / batched_ns.max(1) as f64;
    assert!(
        batched_ns as f64 <= per_event_ns as f64 * 1.05,
        "batched observe_slice must not be slower than per-event dispatch \
         (batched {batched_ns}ns > per-event {per_event_ns}ns + 5% margin)"
    );

    // ── 3. Standard suite at pinned worker counts. ─────────────────────
    let suite_samples = 9;
    let suite_seq_verdicts = verdict_set(&fresh_suite().sequential().execute());
    assert!(
        !suite_seq_verdicts.is_empty(),
        "the sequential standard suite must produce verdicts"
    );
    let suite_seq_ns = median_ns(suite_samples, || fresh_suite().sequential().execute().reports.len());
    let mut suite_rows: Vec<(usize, u128, usize)> = Vec::new();
    for &w in &WORKER_COUNTS {
        let (digest, peak) = pooled_once(fresh_suite(), w);
        assert_eq!(
            digest, suite_seq_verdicts,
            "suite verdicts at {w} workers must be byte-identical to sequential"
        );
        assert!(
            peak <= w,
            "suite at {w} pinned workers must never exceed that ceiling, saw {peak}"
        );
        let ns = median_ns(suite_samples, || fresh_suite().with_workers(w).execute().reports.len());
        suite_rows.push((w, ns, peak));
    }

    // ── 4. The 120-scenario corpus as a pooled suite. ──────────────────
    let config = CorpusConfig {
        seed: DEFAULT_CORPUS_SEED,
        count: 120,
    };
    let scenarios = synthesize(&config);
    let corpus_samples = 5;
    let corpus_seq_verdicts = verdict_set(&corpus_suite(&scenarios).sequential().execute());
    let corpus_seq_ns = median_ns(corpus_samples, || {
        corpus_suite(&scenarios).sequential().execute().reports.len()
    });
    let mut corpus_rows: Vec<(usize, u128, usize)> = Vec::new();
    for &w in &WORKER_COUNTS {
        let (digest, peak) = pooled_once(corpus_suite(&scenarios), w);
        assert_eq!(
            digest, corpus_seq_verdicts,
            "corpus-suite verdicts at {w} workers must be byte-identical to sequential"
        );
        let ns = median_ns(corpus_samples, || {
            corpus_suite(&scenarios).with_workers(w).execute().reports.len()
        });
        corpus_rows.push((w, ns, peak));
    }

    // The full differential sweep — every scenario through execution paths
    // #1–#8 — under the sharded queue at a pinned multi-worker count: the
    // pooled paths must stay byte-identical to the sequential baseline.
    let prev_workers = std::env::var("EPA_WORKERS").ok();
    std::env::set_var("EPA_WORKERS", "4");
    let factory = ScriptedApp::factory();
    let sweep_start = Instant::now();
    let sweep = run_corpus(&config, &factory);
    let sweep_ns = sweep_start.elapsed().as_nanos();
    match prev_workers {
        Some(v) => std::env::set_var("EPA_WORKERS", v),
        None => std::env::remove_var("EPA_WORKERS"),
    }
    assert_eq!(sweep.scenarios, config.count);
    assert_eq!(
        sweep.divergences, 0,
        "execution paths diverged under EPA_WORKERS=4; per-scenario seeds are in CORPUS_report.json"
    );

    // ── The hardware-gated parallel-speedup gate. ──────────────────────
    let pooled_best = |rows: &[(usize, u128, usize)]| {
        rows.iter()
            .filter(|(w, _, _)| *w >= 4)
            .map(|&(_, ns, _)| ns)
            .min()
            .expect("multi-worker rows present")
    };
    let corpus_speedup = corpus_seq_ns as f64 / pooled_best(&corpus_rows).max(1) as f64;
    let suite_speedup = suite_seq_ns as f64 / pooled_best(&suite_rows).max(1) as f64;
    let enforced = available >= 2;
    let reason = if enforced {
        format!("available_parallelism = {available}: pooled >= 1.5x sequential enforced on the corpus suite")
    } else {
        format!(
            "available_parallelism = {available}: multi-worker speedup is not observable on this host; \
             ratio recorded, gate not enforced"
        )
    };

    let suite_rows_json = worker_rows_json(&suite_rows);
    let corpus_rows_json = worker_rows_json(&corpus_rows);
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"available_parallelism\": {available},\n  \
         \"interner\": {{\"warm_suite_misses\": {steady_misses}, \"warm_suite_hits\": {steady_hits}, \
         \"warm_suite_join_hits\": {steady_join_hits}, \"symbols\": {}}},\n  \
         \"oracle\": {{\"events\": {}, \"samples\": {oracle_samples}, \"per_event_ns\": {per_event_ns}, \
         \"batched_ns\": {batched_ns}, \"events_per_sec\": {events_per_sec:.0}, \
         \"per_event_over_batched\": {oracle_ratio:.2}, \"verdicts\": {batched_verdicts}}},\n  \
         \"suite\": {{\"apps\": {}, \"samples\": {suite_samples}, \"sequential_ns\": {suite_seq_ns}, \
         \"verdicts_identical\": true, \"workers\": {suite_rows_json}}},\n  \
         \"corpus\": {{\"scenarios\": {}, \"samples\": {corpus_samples}, \"sequential_ns\": {corpus_seq_ns}, \
         \"verdicts_identical\": true, \"workers\": {corpus_rows_json}}},\n  \
         \"differential\": {{\"workers\": 4, \"scenarios\": {}, \"divergences\": {}, \"sweep_ns\": {sweep_ns}}},\n  \
         \"parallel_gate\": {{\"threshold\": 1.5, \"corpus_speedup\": {corpus_speedup:.2}, \
         \"suite_speedup\": {suite_speedup:.2}, \"enforced\": {enforced}, \"reason\": \"{reason}\"}}\n}}\n",
        after.symbols,
        big.len(),
        cases.len(),
        config.count,
        sweep.scenarios,
        sweep.divergences,
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_hotpath.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (interner steady misses {steady_misses}; oracle {events_per_sec:.0} events/s; \
             corpus pooled/sequential {corpus_speedup:.2}x at best multi-worker count; gate enforced: {enforced})",
            path.display()
        ),
        Err(e) => eprintln!("BENCH_hotpath.json not written: {e}"),
    }
    if enforced {
        assert!(
            corpus_speedup >= 1.5,
            "pooled corpus suite must reach >= 1.5x sequential on a multi-core host \
             (got {corpus_speedup:.2}x at available_parallelism={available})"
        );
    }
}
