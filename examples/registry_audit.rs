//! The paper's §4.2 Windows NT registry audit.
//!
//! ```text
//! cargo run --example registry_audit
//! ```
//!
//! Walks the NT world's 29 unprotected registry keys, runs the two modeled
//! modules (`fontpurge`, `ntlogon`) under environment perturbation, and
//! reports which keys an attacker could exploit — then replays the paper's
//! font-file deletion attack live.

use epa::apps::fontpurge::{font_key, FontPurge};
use epa::apps::{worlds, NtLogon};
use epa::core::campaign::run_once;
use epa::core::engine::Session;

fn main() {
    let setup = worlds::fontpurge_world();
    println!(
        "NT registry: {} keys total, {} unprotected (world-writable)",
        setup.world.registry.key_count(),
        setup.world.registry.unprotected_keys().len()
    );

    // Campaigns over the two modules that consume unprotected keys.
    let font_report = Session::from_setup(setup.clone()).execute(&FontPurge);
    println!("\nfontpurge module:\n{}", font_report.render_text());
    let logon_setup = worlds::ntlogon_world();
    let logon_report = Session::from_setup(logon_setup.clone()).execute(&NtLogon);
    println!("ntlogon module:\n{}", logon_report.render_text());

    // The paper's narrative attack: anyone rewrites the font key; the next
    // administrator-run purge deletes a system-critical file.
    println!("--- exploit replay: font key pointed at system.ini ---");
    let mut attack = worlds::fontpurge_world();
    attack
        .world
        .registry
        .god_set_value(&font_key(1), "Path", "/winnt/system.ini");
    let before = attack.world.fs.exists("/winnt/system.ini");
    let out = run_once(&attack, &FontPurge, None);
    let after = out.os.fs.exists("/winnt/system.ini");
    println!("system.ini existed before: {before}; exists after the admin's purge: {after}");
    for v in &out.violations {
        println!("oracle: {v}");
    }
}
