//! Sessions: one frozen pristine world, many cheap campaign runs.
//!
//! A [`Session`] materializes a [`WorldSpec`] once (or adopts an existing
//! [`TestSetup`]) and freezes the result. Every run — the clean trace, each
//! injected fault, every repeated campaign — starts from a copy-on-write
//! snapshot of the frozen world ([`Session::snapshot`]), so per-fault setup
//! costs O(touched state) instead of a deep world copy. Each run judges
//! itself through the setup's `OracleSet` (the standard detector families
//! plus any spec-declared invariants), subscribed to the run's audit log so
//! verdicts — with their evidence chains — are ready the moment the run
//! ends.

use epa_sandbox::app::Application;
use epa_sandbox::os::Os;

use crate::campaign::{run_once, Campaign, CampaignOptions, CampaignPlan, RunOutcome, TestSetup};
use crate::engine::spec::{SpecError, WorldSpec};
use crate::report::{CampaignReport, FaultRecord};

/// A frozen pristine world plus campaign options.
///
/// The world inside a session is immutable: runs snapshot it, they never
/// mutate it. That is what makes one session reusable across the clean run,
/// a full campaign, an incremental campaign, and any number of repetitions
/// — all observing byte-identical initial state.
#[derive(Debug, Clone)]
pub struct Session {
    setup: TestSetup,
    options: CampaignOptions,
}

impl Session {
    /// Validates and materializes a spec into a frozen session.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] from [`WorldSpec::materialize`].
    pub fn new(spec: &WorldSpec) -> Result<Session, SpecError> {
        Ok(Session::from_setup(spec.materialize()?))
    }

    /// Freezes an already-built setup (the migration path from hand-built
    /// worlds; see the README's `Campaign` → `Session` notes).
    pub fn from_setup(setup: TestSetup) -> Session {
        Session {
            setup,
            options: CampaignOptions::default(),
        }
    }

    /// Replaces the campaign options.
    #[must_use]
    pub fn with_options(mut self, options: CampaignOptions) -> Session {
        self.options = options;
        self
    }

    /// Installs a shared [`crate::engine::planner::ResultCache`]: campaigns
    /// run from this session memoize every executed run and replay
    /// identical ones (here and in any other session sharing the cache)
    /// instead of re-executing them.
    #[must_use]
    pub fn with_result_cache(mut self, cache: crate::engine::planner::ResultCache) -> Session {
        self.options.cache = Some(cache);
        self
    }

    /// Installs a result cache layered over a persistent
    /// [`crate::store::ResultStore`] backend — the session-level analogue
    /// of [`crate::engine::Suite::with_store`].
    #[must_use]
    pub fn with_store(self, store: shim_sync::sync::Arc<dyn crate::store::ResultStore>) -> Session {
        self.with_result_cache(crate::engine::planner::ResultCache::with_store(store))
    }

    /// The frozen setup.
    pub fn setup(&self) -> &TestSetup {
        &self.setup
    }

    /// The frozen pristine world.
    pub fn world(&self) -> &Os {
        &self.setup.world
    }

    /// A copy-on-write snapshot of the pristine world: O(1), sharing all
    /// substrate storage until the copy mutates.
    pub fn snapshot(&self) -> Os {
        self.setup.world.clone()
    }

    /// Runs the application once, unperturbed, from a fresh snapshot.
    pub fn run(&self, app: &dyn Application) -> RunOutcome {
        run_once(&self.setup, app, None)
    }

    /// Steps 1–5 of the paper's procedure: trace the application and build
    /// the per-site fault plan.
    pub fn plan(&self, app: &dyn Application) -> CampaignPlan {
        self.campaign(app).plan()
    }

    /// Steps 1–10: the full campaign.
    pub fn execute(&self, app: &dyn Application) -> CampaignReport {
        self.campaign(app).execute_plan(&self.plan(app))
    }

    /// Executes a pre-built plan (lets callers inspect or prune it first).
    pub fn execute_plan(&self, app: &dyn Application, plan: &CampaignPlan) -> CampaignReport {
        self.campaign(app).execute_plan(plan)
    }

    /// As [`Session::execute`], streaming every record to `on_record` as
    /// soon as its run completes (completion order; the report is in plan
    /// order).
    pub fn execute_streaming(&self, app: &dyn Application, on_record: &mut dyn FnMut(&FaultRecord)) -> CampaignReport {
        let plan = self.plan(app);
        self.campaign(app).execute_plan_with(&plan, on_record)
    }

    /// The paper's incremental step 9: perturb site by site until the
    /// interaction-coverage criterion is met.
    pub fn execute_until(&self, app: &dyn Application, min_interaction_coverage: f64) -> CampaignReport {
        self.campaign(app).execute_until(min_interaction_coverage)
    }

    pub(crate) fn campaign<'a>(&'a self, app: &'a dyn Application) -> Campaign<'a> {
        Campaign::build(app, &self.setup, self.options.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sandbox::cred::{Gid, Uid};
    use epa_sandbox::os::ScenarioMeta;
    use epa_sandbox::process::Pid;
    use epa_sandbox::trace::InputSemantic;

    /// The same mini-lpr the campaign tests use: one input site, one
    /// naive-create site.
    struct MiniLpr;
    impl Application for MiniLpr {
        fn name(&self) -> &'static str {
            "mini-lpr"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let Ok(job) = os.sys_arg(pid, "lpr:arg", 0, InputSemantic::UserFileName) else {
                return 2;
            };
            if os
                .sys_write_file(pid, "lpr:create", "/var/spool/lpd/job", job, 0o660)
                .is_err()
            {
                return 1;
            }
            0
        }
    }

    fn session() -> Session {
        let scenario = ScenarioMeta::default();
        let spec = WorldSpec::builder()
            .user("root", Uid::ROOT, Gid::ROOT, "/root")
            .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
            .user("evil", scenario.attacker, scenario.attacker_gid, "/home/evil")
            .dir("/var/spool/lpd", Uid::ROOT, Gid::ROOT, 0o755)
            .root_file("/etc/passwd", "root:0:0:", 0o644)
            .root_file("/etc/shadow", "root:HASH", 0o600)
            .suid_root_program("/usr/bin/lpr")
            .args(["report.txt"])
            .build();
        Session::new(&spec).unwrap()
    }

    #[test]
    fn session_reproduces_the_campaign_numbers() {
        let s = session();
        let report = s.execute(&MiniLpr);
        assert_eq!(report.injected(), 9);
        assert_eq!(report.violated(), 4);
        assert_eq!(report.clean_violations, 0);
    }

    #[test]
    fn snapshots_share_storage_and_leave_the_pristine_world_untouched() {
        let s = session();
        let snap = s.snapshot();
        assert_eq!(snap.fs.shared_inodes_with(&s.world().fs), s.world().fs.inode_count());
        // A full campaign later, the frozen world is still pristine.
        let _ = s.execute(&MiniLpr);
        assert!(s.world().trace.sites().is_empty());
        assert_eq!(s.world().audit.len(), 0);
        assert!(!s.world().fs.exists("/var/spool/lpd/job"));
    }

    #[test]
    fn streaming_sees_every_record() {
        let s = session();
        let mut streamed = Vec::new();
        let report = s.execute_streaming(&MiniLpr, &mut |r| streamed.push(r.fault_id.clone()));
        assert_eq!(streamed.len(), report.injected());
        let mut in_report: Vec<String> = report.records.iter().map(|r| r.fault_id.clone()).collect();
        streamed.sort();
        in_report.sort();
        assert_eq!(streamed, in_report);
    }

    #[test]
    fn session_matches_the_deprecated_campaign_shim() {
        let s = session();
        #[allow(deprecated)]
        let legacy = Campaign::new(&MiniLpr, s.setup()).execute();
        assert_eq!(s.execute(&MiniLpr), legacy);
    }
}
