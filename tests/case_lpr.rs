//! Integration: the §3.4 lpr walkthrough.
//!
//! Deliberately driven through the deprecated `Campaign::new(...).execute()`
//! shim: the engine redesign keeps the old constructor as a thin layer over
//! `engine::Session`, and this file is the regression proof that the shim
//! still reproduces the paper's numbers (4 injected / 4 violated at the
//! create site). New code should use `epa::core::engine::{Session, Suite}`.

#![allow(deprecated)]

use epa::apps::{worlds, Lpr, LprFixed};
use epa::core::campaign::{Campaign, CampaignOptions};
use epa::sandbox::trace::SiteId;
use std::collections::BTreeSet;

fn create_site_only() -> CampaignOptions {
    let mut filter = BTreeSet::new();
    filter.insert(SiteId::new("lpr:create_spool"));
    CampaignOptions {
        site_filter: Some(filter),
        ..Default::default()
    }
}

#[test]
fn four_applicable_attributes_all_violate() {
    let setup = worlds::lpr_world();
    let report = Campaign::new(&Lpr, &setup).with_options(create_site_only()).execute();
    assert_eq!(report.clean_violations, 0);
    assert_eq!(report.injected(), 4, "existence, ownership, permission, symbolic link");
    assert_eq!(report.violated(), 4, "paper: violations detected for attributes 1-4");
    // Attributes 5-7 (content/name invariance, working directory) are not
    // applicable at a first-encounter create with an absolute path.
    let ids: BTreeSet<&str> = report.records.iter().map(|r| r.fault_id.as_str()).collect();
    assert!(!ids
        .iter()
        .any(|i| i.contains(":content@") || i.contains(":name@") || i.contains(":workdir@")));
}

#[test]
fn the_symlink_attack_clobbers_the_passwd_file() {
    let setup = worlds::lpr_world();
    let report = Campaign::new(&Lpr, &setup).with_options(create_site_only()).execute();
    let symlink = report
        .records
        .iter()
        .find(|r| r.fault_id.starts_with("direct:fs:symlink"))
        .expect("symlink fault injected");
    assert!(!symlink.tolerated());
    assert!(symlink.violations.iter().any(|v| v.description.contains("/etc/passwd")));
}

#[test]
fn fixed_lpr_tolerates_all_four() {
    let setup = worlds::lpr_world();
    let report = Campaign::new(&LprFixed, &setup)
        .with_options(create_site_only())
        .execute();
    assert_eq!(report.injected(), 4);
    assert_eq!(report.violated(), 0, "{:#?}", report.violations().collect::<Vec<_>>());
}

#[test]
fn full_lpr_campaign_also_covers_input_sites() {
    let setup = worlds::lpr_world();
    let report = Campaign::new(&Lpr, &setup).execute();
    assert_eq!(report.total_sites, 3, "argv, read-input, create");
    assert!(report.injected() > 4);
    assert_eq!(report.clean_violations, 0);
}

#[test]
fn the_executor_paths_keep_the_paper_numbers() {
    use epa::core::engine::{Session, Suite};
    // Through the campaign-level pool (parallel plan execution)...
    let session = Session::from_setup(worlds::lpr_world()).with_options(CampaignOptions {
        parallel: true,
        ..create_site_only()
    });
    let pooled = session.execute(&Lpr);
    assert_eq!(pooled.injected(), 4, "existence, ownership, permission, symbolic link");
    assert_eq!(pooled.violated(), 4, "paper: violations detected for attributes 1-4");
    // ...and through the suite-wide shared queue, the numbers hold.
    let mut suite = Suite::new();
    suite.register_session(Lpr, session);
    let batch = suite.execute();
    assert_eq!(batch.get("lpr").expect("lpr report"), &pooled);
}
