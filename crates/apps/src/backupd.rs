//! `backupd`: a root backup job exercising the paper's *permission mask*
//! fault (Table 5, environment-variable row) and disclosure-to-file.
//!
//! The daemon snapshots the shadow password file into `/var/backups`. The
//! creation mode is `0666 & ~mask`, with the mask taken from the `UMASK`
//! environment variable — exactly the pattern Table 5 perturbs with
//! *"change mask to 0 so it will not mask any permission bit"*. The
//! vulnerable version applies whatever mask the environment supplies; with
//! a zeroed mask the backup comes out world-readable and the secret content
//! is disclosed to every local user.

use epa_sandbox::app::Application;
use epa_sandbox::data::Data;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// Where the snapshot is written.
pub const BACKUP_FILE: &str = "/var/backups/shadow.bak";

/// The `backupd` world, declared as data: a root cron job snapshotting the
/// shadow file, with the creation mask supplied by the environment.
pub fn spec() -> epa_core::engine::WorldSpec {
    use epa_sandbox::cred::{Gid, Uid};
    crate::worlds::base_unix_builder()
        .dir("/var/backups", Uid::ROOT, Gid::ROOT, 0o755)
        .root_file("/usr/sbin/backupd", "", 0o755)
        .invoker(Uid::ROOT)
        .env("UMASK", "077")
        .cwd("/")
        .build()
}

fn parse_mask(raw: &Data) -> Option<u16> {
    u16::from_str_radix(raw.text().trim(), 8).ok()
}

/// The vulnerable backup job.
#[derive(Debug, Clone, Copy, Default)]
pub struct Backupd;

impl Application for Backupd {
    fn name(&self) -> &'static str {
        "backupd"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        // Flaw: the creation mask comes straight from the environment.
        let mask = os
            .sys_getenv(pid, "backupd:getenv_umask", "UMASK", InputSemantic::EnvPermMask)
            .ok()
            .and_then(|raw| parse_mask(&raw))
            .unwrap_or(0o077);
        let Ok(shadow) = os.sys_read_file(pid, "backupd:read_shadow", "/etc/shadow") else {
            let _ = os.sys_print(pid, "backupd:err", "backupd: cannot read shadow\n");
            return 1;
        };
        let mode = 0o666 & !mask;
        if os
            .sys_write_file(pid, "backupd:write_backup", BACKUP_FILE, shadow, mode)
            .is_err()
        {
            let _ = os.sys_print(pid, "backupd:err", "backupd: cannot write backup\n");
            return 1;
        }
        let _ = os.sys_print(pid, "backupd:done", "backupd: snapshot complete\n");
        0
    }
}

/// The patched job: the environment may only *tighten* the fixed 0600 mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct BackupdFixed;

impl Application for BackupdFixed {
    fn name(&self) -> &'static str {
        "backupd-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let mask = os
            .sys_getenv(pid, "backupd:getenv_umask", "UMASK", InputSemantic::EnvPermMask)
            .ok()
            .and_then(|raw| parse_mask(&raw))
            .unwrap_or(0o077);
        let Ok(shadow) = os.sys_read_file(pid, "backupd:read_shadow", "/etc/shadow") else {
            let _ = os.sys_print(pid, "backupd:err", "backupd: cannot read shadow\n");
            return 1;
        };
        // Fix 1: sensitive snapshots are never created wider than 0600,
        // whatever the environment claims the mask is.
        let mode = 0o600 & !mask;
        // Fix 2: never write secrets into a pre-existing object — a planted
        // file (or symlink) would keep its own mode and placement. Remove
        // whatever occupies the name (lstat + unlink, so links are removed,
        // not followed) and create fresh with O_EXCL.
        if os.sys_lstat(pid, "backupd:write_backup", BACKUP_FILE).is_ok() {
            let _ = os.sys_unlink(pid, "backupd:write_backup", BACKUP_FILE);
        }
        if os
            .sys_create_excl(pid, "backupd:write_backup", BACKUP_FILE, mode)
            .is_err()
        {
            let _ = os.sys_print(pid, "backupd:err", "backupd: cannot write backup\n");
            return 1;
        }
        if os
            .sys_append(pid, "backupd:write_backup", BACKUP_FILE, shadow, mode)
            .is_err()
        {
            let _ = os.sys_print(pid, "backupd:err", "backupd: cannot write backup\n");
            return 1;
        }
        let _ = os.sys_print(pid, "backupd:done", "backupd: snapshot complete\n");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;
    use epa_core::engine::Session;
    use epa_sandbox::policy::ViolationKind;

    #[test]
    fn clean_snapshot_is_violation_free_and_private() {
        let setup = worlds::backupd_world();
        let out = run_once(&setup, &Backupd, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let st = out.os.fs.stat(BACKUP_FILE, None).unwrap();
        assert_eq!(st.mode.bits(), 0o600, "0666 & !0077");
    }

    #[test]
    fn zeroed_mask_discloses_the_snapshot() {
        let mut setup = worlds::backupd_world();
        setup.env.insert("UMASK".into(), "0".into());
        let out = run_once(&setup, &Backupd, None);
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::Disclosure),
            "{:?}",
            out.violations
        );
        let st = out.os.fs.stat(BACKUP_FILE, None).unwrap();
        assert!(st.mode.other_allows(epa_sandbox::mode::Access::Read));
    }

    #[test]
    fn campaign_finds_the_mask_fault() {
        let setup = worlds::backupd_world();
        let report = Session::from_setup(setup).execute(&Backupd);
        assert_eq!(report.clean_violations, 0);
        let mask_record = report
            .records
            .iter()
            .find(|r| r.fault_id == "indirect:env-perm-mask:zero")
            .expect("the Table 5 mask fault is injected");
        assert!(!mask_record.tolerated(), "the zeroed mask must defeat backupd");
    }

    #[test]
    fn fixed_backupd_tolerates_every_fault() {
        let setup = worlds::backupd_world();
        let report = Session::from_setup(setup).execute(&BackupdFixed);
        assert_eq!(report.violated(), 0, "{:#?}", report.violations().collect::<Vec<_>>());
        // Same interaction surface.
        assert_eq!(report.total_sites, 3, "umask, read, write");
    }

    #[test]
    fn disclosure_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::backupd_world();
        setup.env.insert("UMASK".into(), "0".into());
        let out = run_once(&setup, &Backupd, None);
        crate::assert_evidence_in_bounds(&out);
        assert!(out.violations.iter().any(|v| v.detector == "disclosure"));
    }
}
