//! A `fingerd`-style network daemon: the network-input case the paper's
//! model motivates (Fuzz-era overflows plus environment trust).
//!
//! The daemon receives a request on port 79, verifies the client host
//! against a DNS-backed allowlist, and serves the named user's `.plan`.
//! Seeded flaws in the vulnerable version:
//!
//! * unchecked copies of the request and of the DNS reply into fixed
//!   buffers (the classic `gets`-era overflow);
//! * fail-open allowlisting — a resolver failure grants access;
//! * trusting the *claimed* message origin (authenticity).

use epa_sandbox::app::Application;
use epa_sandbox::buffer::{CopyDiscipline, FixedBuf};
use epa_sandbox::data::{Data, PathArg};
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// The daemon's listening port.
pub const FINGER_PORT: u16 = 79;
/// Allowlisted client domain.
pub const TRUSTED_DOMAIN: &str = "cs.example.edu";

/// The `fingerd` world, declared as data: a root daemon serving plan files
/// over port 79 with a DNS-based host allowlist. The oracle's invoker is
/// the anonymous remote client (uid 9999).
pub fn spec() -> epa_core::engine::WorldSpec {
    use epa_sandbox::cred::{Gid, Uid};
    use epa_sandbox::os::ScenarioMeta;
    let scenario = ScenarioMeta {
        invoker: Uid(9999),
        invoker_gid: Gid(999),
        ..Default::default()
    };
    crate::worlds::base_unix_builder()
        .scenario(scenario)
        .user("nobody", Uid(9999), Gid(999), "/")
        .user("user1001", Uid(1001), Gid(100), "/home/user1001")
        .file(
            "/home/user1001/.plan",
            "On sabbatical until fall.\n",
            Uid(1001),
            Gid(100),
            0o644,
        )
        .root_file("/usr/sbin/fingerd", "", 0o755)
        .dns("trusted.cs.example.edu", "10.0.5.1")
        .dns("evil.example.net", "198.51.100.66")
        .service("trusted.cs.example.edu", 1023, true)
        .inbound_message(FINGER_PORT, "trusted.cs.example.edu", "user1001")
        .invoker(Uid::ROOT)
        .cwd("/")
        .build()
}

fn serve(os: &mut Os, pid: Pid, username: &str, reply_to: &str, actual_from: &str) -> i32 {
    let plan_path = format!("/home/{username}/.plan");
    let reply = match os.sys_read_file(pid, "fingerd:read_plan", plan_path.as_str()) {
        Ok(plan) => {
            let mut r = Data::from(format!("Plan for {username}:\n"));
            r.append(&plan);
            r
        }
        Err(_) => Data::from(format!("finger: {username}: no such user\n")),
    };
    let _ = os.sys_net_send(pid, "fingerd:reply", reply_to, 1023, reply);
    // Oracle instrumentation: the world's invariant is that plan data only
    // flows to allowlisted hosts; `actual_from` is ground truth.
    let violated = !actual_from.ends_with(TRUSTED_DOMAIN);
    os.emit_custom(
        "fingerd-serves-untrusted",
        violated,
        format!("served {username} to {actual_from}"),
    );
    0
}

/// The vulnerable finger daemon.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fingerd;

impl Application for Fingerd {
    fn name(&self) -> &'static str {
        "fingerd"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let Ok(msg) = os.sys_net_recv(pid, "fingerd:recv", FINGER_PORT, InputSemantic::NetPacket) else {
            return 1;
        };
        // Flaw 1: unchecked copy of the request line.
        let mut reqbuf = FixedBuf::new("reqbuf", 512);
        os.mem_copy(pid, &mut reqbuf, &msg.data, CopyDiscipline::Unchecked);
        let username = reqbuf.text().trim().to_string();

        // Flaw 2/3: the allowlist check resolves the *claimed* host and
        // fails open on resolver errors.
        let allowed = match os.sys_dns(pid, "fingerd:dns", &msg.claimed_from, InputSemantic::NetDnsReply) {
            Ok(reply) => {
                let mut hostbuf = FixedBuf::new("hostbuf", 128);
                os.mem_copy(pid, &mut hostbuf, &reply, CopyDiscipline::Unchecked);
                msg.claimed_from.ends_with(TRUSTED_DOMAIN)
            }
            Err(_) => true, // fail open
        };
        if !allowed {
            let _ = os.sys_net_send(pid, "fingerd:reply", &msg.claimed_from, 1023, "finger: access denied\n");
            return 0;
        }
        serve(os, pid, &username, &msg.claimed_from, &msg.actual_from)
    }
}

/// The patched daemon: checked copies, fail-closed allowlisting, and no
/// relaying of files the anonymous client could not read itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct FingerdFixed;

impl Application for FingerdFixed {
    fn name(&self) -> &'static str {
        "fingerd-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let Ok(msg) = os.sys_net_recv(pid, "fingerd:recv", FINGER_PORT, InputSemantic::NetPacket) else {
            return 1;
        };
        let mut reqbuf = FixedBuf::new("reqbuf", 512);
        os.mem_copy(pid, &mut reqbuf, &msg.data, CopyDiscipline::Checked);
        let username = reqbuf.text().trim().to_string();
        if username.is_empty() || !username.chars().all(|c| c.is_ascii_alphanumeric()) {
            let _ = os.sys_net_send(pid, "fingerd:reply", &msg.claimed_from, 1023, "finger: bad request\n");
            return 0;
        }
        let allowed = match os.sys_dns(pid, "fingerd:dns", &msg.claimed_from, InputSemantic::NetDnsReply) {
            Ok(reply) => {
                let mut hostbuf = FixedBuf::new("hostbuf", 128);
                os.mem_copy(pid, &mut hostbuf, &reply, CopyDiscipline::Checked);
                msg.claimed_from.ends_with(TRUSTED_DOMAIN)
            }
            Err(_) => false, // fail closed
        };
        if !allowed {
            let _ = os.sys_net_send(pid, "fingerd:reply", &msg.claimed_from, 1023, "finger: access denied\n");
            return 0;
        }
        // Fix: only world-readable plan files are served.
        let plan_path = PathArg::clean(format!("/home/{username}/.plan"));
        let readable = os
            .sys_lstat(pid, "fingerd:read_plan", plan_path.clone())
            .is_ok_and(|st| {
                st.file_type == epa_sandbox::fs::FileType::Regular
                    && st.mode.other_allows(epa_sandbox::mode::Access::Read)
            });
        if !readable {
            let _ = os.sys_net_send(pid, "fingerd:reply", &msg.claimed_from, 1023, "finger: not available\n");
            return 0;
        }
        serve(os, pid, &username, &msg.claimed_from, &msg.actual_from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;
    use epa_sandbox::net::Message;
    use epa_sandbox::policy::ViolationKind;

    #[test]
    fn clean_request_is_served_without_violation() {
        let setup = worlds::fingerd_world();
        let out = run_once(&setup, &Fingerd, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.os.net.sent.iter().any(|(_, _, d)| d.text().contains("sabbatical")));
    }

    #[test]
    fn oversized_request_overflows_the_buffer() {
        let mut setup = worlds::fingerd_world();
        setup.world.net.pop_message(FINGER_PORT);
        setup.world.net.push_message(
            FINGER_PORT,
            Message::genuine("trusted.cs.example.edu", "A".repeat(4000)),
        );
        let out = run_once(&setup, &Fingerd, None);
        assert!(out.violations.iter().any(|v| v.kind == ViolationKind::MemoryCorruption));
        let fixed = run_once(&setup, &FingerdFixed, None);
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
    }

    #[test]
    fn spoofed_origin_serves_the_attacker() {
        let mut setup = worlds::fingerd_world();
        setup.world.net.spoof_next(FINGER_PORT, "evil.example.net");
        let out = run_once(&setup, &Fingerd, None);
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::Custom),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn fixed_fails_closed_on_dns_outage() {
        let mut setup = worlds::fingerd_world();
        setup.world.net.dns_available = false;
        let out = run_once(&setup, &FingerdFixed, None);
        assert!(out.violations.is_empty());
        assert!(out.os.net.sent.iter().any(|(_, _, d)| d.text().contains("denied")));
        // The vulnerable one serves anyway (fail-open) — tolerated here only
        // because the client happens to be trusted.
        let vuln = run_once(&setup, &Fingerd, None);
        assert!(vuln.os.net.sent.iter().any(|(_, _, d)| d.text().contains("Plan for")));
    }

    #[test]
    fn overflow_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::fingerd_world();
        setup.world.net.pop_message(FINGER_PORT);
        setup.world.net.push_message(
            FINGER_PORT,
            Message::genuine("trusted.cs.example.edu", "A".repeat(4000)),
        );
        let out = run_once(&setup, &Fingerd, None);
        crate::assert_evidence_in_bounds(&out);
        let overflow = out
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::MemoryCorruption)
            .expect("overflow detected");
        assert!(overflow.evidence.items[0].summary.contains("overflow"));
    }
}
