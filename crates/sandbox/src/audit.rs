//! The audit-event stream: everything the policy oracle needs to judge a run.
//!
//! Every security-relevant syscall effect appends an [`AuditEvent`]. Events
//! are *self-contained*: they capture, at emission time, the facts the
//! policy rules need (could the invoker have written this file? was the file
//! protected? what taint rode on the path?), so [`crate::policy`] can
//! evaluate a run as a pure function over the log. This mirrors the paper's
//! step 8 — "detect if security policy is violated" — as an executable
//! oracle rather than a human judgment.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cred::{Credentials, Uid};
use crate::data::Label;
use crate::fs::FileTag;
use crate::intern::PathSym;

/// Where emitted data became observable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SinkKind {
    /// The invoking user's terminal.
    Stdout,
    /// A file the invoker can read.
    File {
        /// Physical path of the file.
        path: String,
    },
    /// A network peer.
    Network {
        /// Destination description (`host:port`).
        to: String,
    },
}

impl fmt::Display for SinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkKind::Stdout => f.write_str("stdout"),
            SinkKind::File { path } => write!(f, "file:{path}"),
            SinkKind::Network { to } => write!(f, "net:{to}"),
        }
    }
}

/// Facts captured when a file is written or created.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteInfo {
    /// Physical path written (symlinks already expanded). An interned
    /// symbol: copying the event copies a pointer, and `Display` renders
    /// lazily — no owned `String` per event.
    pub path: PathSym,
    /// Whether the (post-symlink) target existed before the write.
    pub existed_before: bool,
    /// Owner of the pre-existing target, if any.
    pub owner_before: Option<Uid>,
    /// Could the *invoker alone* have written the target (if it existed) or
    /// created in its parent (if not)?
    pub invoker_could_write: bool,
    /// Tags on the pre-existing target.
    pub target_tags: BTreeSet<FileTag>,
    /// Tags on the parent directory.
    pub parent_tags: BTreeSet<FileTag>,
    /// Could the invoker alone have written into the parent directory?
    pub invoker_could_write_parent: bool,
    /// Can the invoker read the file after the write (for disclosure-to-file)?
    pub invoker_could_read_after: bool,
    /// Whether the target was created earlier in this same run (a program
    /// appending to its own temp file is not overwriting foreign state).
    pub created_by_self: bool,
    /// Taint carried by the path argument.
    pub path_taint: BTreeSet<Label>,
    /// Labels on the written data.
    pub data_labels: BTreeSet<Label>,
    /// Credentials of the writing process.
    pub by: Credentials,
}

/// One security-relevant effect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditEvent {
    /// A file's content was read.
    FileRead {
        /// Physical path (interned).
        path: PathSym,
        /// Tags on the file.
        tags: BTreeSet<FileTag>,
        /// Taint carried by the path argument.
        path_taint: BTreeSet<Label>,
        /// Reader credentials.
        by: Credentials,
    },
    /// A file was written, created, truncated or appended.
    FileWrite(WriteInfo),
    /// A directory entry was removed.
    FileDelete {
        /// Physical path (interned).
        path: PathSym,
        /// Owner of the removed object.
        owner: Uid,
        /// Tags on the removed object.
        tags: BTreeSet<FileTag>,
        /// Taint carried by the path argument.
        path_taint: BTreeSet<Label>,
        /// Could the invoker alone have removed it?
        invoker_could_delete: bool,
        /// Deleter credentials.
        by: Credentials,
    },
    /// The process changed its working directory.
    Chdir {
        /// Physical path of the new cwd (interned).
        path: PathSym,
        /// Owner of the directory.
        owner: Uid,
        /// Taint carried by the path argument.
        path_taint: BTreeSet<Label>,
        /// Credentials.
        by: Credentials,
    },
    /// A program was executed.
    Exec {
        /// The program as named by the application.
        requested: String,
        /// The resolved binary's physical path (interned).
        resolved: PathSym,
        /// Owner of the resolved binary.
        owner: Uid,
        /// Whether the binary is world-writable.
        world_writable: bool,
        /// Whether the directory the binary was found in is controllable by
        /// someone other than root/the invoker.
        dir_untrusted: bool,
        /// Taint on the program path (e.g. from `PATH` or a registry key).
        path_taint: BTreeSet<Label>,
        /// Labels on the argument vector's data.
        arg_labels: BTreeSet<Label>,
        /// Credentials at exec time.
        by: Credentials,
    },
    /// Labeled data reached an observable sink.
    Emit {
        /// The sink.
        sink: SinkKind,
        /// Labels on the emitted data.
        labels: BTreeSet<Label>,
        /// Credentials of the emitting process.
        by: Credentials,
    },
    /// An unchecked copy overflowed a fixed-size buffer: the proxy for
    /// memory corruption / arbitrary code execution.
    MemoryCorruption {
        /// Name of the overflowed buffer.
        buffer: String,
        /// Buffer capacity.
        capacity: usize,
        /// Bytes the copy attempted to place.
        attempted: usize,
        /// Credentials of the corrupted process.
        by: Credentials,
    },
    /// A registry value was written.
    RegistryWrite {
        /// Key path.
        key: String,
        /// Credentials.
        by: Credentials,
    },
    /// A registry key/value was deleted.
    RegistryDelete {
        /// Key path.
        key: String,
        /// Taint carried on the key name.
        path_taint: BTreeSet<Label>,
        /// Credentials.
        by: Credentials,
    },
    /// A network message was received.
    NetRecv {
        /// Local port.
        port: u16,
        /// Whether claimed and actual origin matched.
        authentic: bool,
        /// Actual origin.
        actual_from: String,
    },
    /// An application- or world-declared invariant check.
    Custom {
        /// Rule identifier.
        rule: String,
        /// Whether the invariant was violated.
        violated: bool,
        /// Human-readable detail.
        detail: String,
    },
}

impl AuditEvent {
    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            AuditEvent::FileRead { path, .. } => format!("read {path}"),
            AuditEvent::FileWrite(w) => format!("write {}", w.path),
            AuditEvent::FileDelete { path, .. } => format!("delete {path}"),
            AuditEvent::Chdir { path, .. } => format!("chdir {path}"),
            AuditEvent::Exec { resolved, .. } => format!("exec {resolved}"),
            AuditEvent::Emit { sink, .. } => format!("emit to {sink}"),
            AuditEvent::MemoryCorruption { buffer, .. } => format!("overflow of {buffer}"),
            AuditEvent::RegistryWrite { key, .. } => format!("regwrite {key}"),
            AuditEvent::RegistryDelete { key, .. } => format!("regdelete {key}"),
            AuditEvent::NetRecv { port, .. } => format!("netrecv :{port}"),
            AuditEvent::Custom { rule, .. } => format!("custom:{rule}"),
        }
    }
}

/// The append-only audit log of one run, with an optional *oracle
/// subscription*: an attached [`crate::policy::OracleSet`] observes every
/// event at [`AuditLog::push`] time, so the policy oracle evaluates
/// incrementally during the run instead of re-scanning the completed log.
///
/// The subscription is runtime-only state: clones, equality comparisons and
/// (de)serialization see the recorded events alone — a cloned world starts
/// unsubscribed, exactly as it starts unhooked from the fault interceptor.
#[derive(Debug, Default)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
    oracle: Option<Box<crate::policy::OracleSet>>,
}

impl Clone for AuditLog {
    /// Clones the recorded events; the oracle subscription stays behind.
    fn clone(&self) -> Self {
        AuditLog {
            events: self.events.clone(),
            oracle: None,
        }
    }
}

impl PartialEq for AuditLog {
    /// Two logs are equal when they recorded the same events; the
    /// subscription is runtime-only state.
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}

impl Eq for AuditLog {}

impl Serialize for AuditLog {
    fn ser(&self) -> serde::Value {
        serde::Value::Map(vec![("events".to_string(), self.events.ser())])
    }
}

impl Deserialize for AuditLog {
    fn de(v: &serde::Value) -> Result<Self, serde::DeError> {
        let map = v.as_map().ok_or_else(|| serde::DeError::expected("map", "AuditLog"))?;
        Ok(AuditLog {
            events: Vec::de(serde::field(map, "events", "AuditLog")?)?,
            oracle: None,
        })
    }
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, returning its index. An attached oracle observes
    /// the event immediately.
    pub fn push(&mut self, event: AuditEvent) -> usize {
        self.events.push(event);
        let idx = self.events.len() - 1;
        if let Some(oracle) = &mut self.oracle {
            oracle.observe(idx, &self.events[idx]);
        }
        idx
    }

    /// Appends a batch of events from one syscall in a single call,
    /// returning the index of the first. The attached oracle observes the
    /// whole slice through [`crate::policy::OracleSet::observe_slice`] —
    /// one dispatch per syscall instead of one per event.
    pub fn push_batch(&mut self, batch: impl IntoIterator<Item = AuditEvent>) -> usize {
        let start = self.events.len();
        self.events.extend(batch);
        if let Some(oracle) = &mut self.oracle {
            oracle.observe_slice(start, &self.events[start..]);
        }
        start
    }

    /// Subscribes an oracle set to this log. Events already recorded are
    /// replayed to the set first (so attachment order cannot lose
    /// evidence), as one batched slice; every subsequent
    /// [`AuditLog::push`] streams to it. Replaces any previous
    /// subscription.
    pub fn attach_oracle(&mut self, mut oracle: crate::policy::OracleSet) {
        oracle.observe_slice(0, &self.events);
        self.oracle = Some(Box::new(oracle));
    }

    /// Removes and returns the subscribed oracle set, ready for
    /// [`crate::policy::OracleSet::finish`].
    pub fn detach_oracle(&mut self) -> Option<crate::policy::OracleSet> {
        self.oracle.take().map(|b| *b)
    }

    /// Whether an oracle set is subscribed.
    pub fn has_oracle(&self) -> bool {
        self.oracle.is_some()
    }

    /// All events in order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates events with their indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &AuditEvent)> {
        self.events.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_preserves_order() {
        let mut log = AuditLog::new();
        let a = log.push(AuditEvent::Custom {
            rule: "a".into(),
            violated: false,
            detail: String::new(),
        });
        let b = log.push(AuditEvent::Custom {
            rule: "b".into(),
            violated: true,
            detail: String::new(),
        });
        assert_eq!((a, b), (0, 1));
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[1].describe(), "custom:b");
    }

    #[test]
    fn sink_display() {
        assert_eq!(SinkKind::Stdout.to_string(), "stdout");
        assert_eq!(SinkKind::File { path: "/x".into() }.to_string(), "file:/x");
        assert_eq!(SinkKind::Network { to: "h:79".into() }.to_string(), "net:h:79");
    }

    #[test]
    fn describe_covers_variants() {
        let by = Credentials::root();
        let ev = AuditEvent::MemoryCorruption {
            buffer: "line".into(),
            capacity: 8,
            attempted: 99,
            by,
        };
        assert!(ev.describe().contains("line"));
    }
}
