//! The differential corpus harness: one scenario, every execution path,
//! byte-identical verdicts — or a minimized counterexample.
//!
//! The engine grew several ways to execute the same campaign (sequential,
//! pooled executor, suite pool, dedup/memoizing planner, budgeted adaptive
//! planner, incremental vs. batch oracle). All of them promise the same
//! verdict set; [`differential_check`] holds them to it. Each path's report
//! is flattened to a canonical per-record digest line — deliberately
//! *excluding* the `cache_hit` and `pruned` provenance flags, the only
//! fields a replay (or a statically pruned synthesis) may legitimately
//! differ in — and compared byte-for-byte against the sequential baseline.
//!
//! Path #8 (`pruned`) is the soundness gate for the static analyzer: the
//! same scenario with [`CampaignOptions::static_prune`] on must reproduce
//! the exhaustive (pruning-off) verdict set exactly, so a `ProvablyInert`
//! classification that was wrong shows up as a corpus divergence.
//!
//! [`run_corpus`] sweeps a whole synthesized corpus, shrinks any divergence
//! to a minimal world diff ([`mod@super::shrink`]), and rolls the results
//! into a [`super::report::CorpusReport`].

use shim_sync::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use epa_sandbox::app::Application;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;

use super::report::CorpusReport;
use super::{shrink, Scenario};
use crate::campaign::{run_once, run_once_batch_oracle, CampaignOptions};
use crate::coverage::AdequacyPoint;
use crate::engine::planner::ResultCache;
use crate::engine::{Session, Suite};
use crate::inject::InjectionHook;
use crate::report::CampaignReport;
use crate::report::FaultRecord;

/// Builds the application driven by a scenario's script.
///
/// The corpus layer stays app-crate-free: `epa-core` never names a concrete
/// application type. Callers (the `reproduce` binary, benches, tests) pass
/// a factory producing the `epa-apps` scripted adapter — or any other
/// [`Application`] — for each scenario.
pub type AppFactory<'a> = &'a (dyn Fn(&Scenario) -> Arc<dyn Application + Send + Sync> + Sync);

/// Adapter registering one shared [`Application`] with a [`Suite`] (which
/// takes ownership; the blanket impls only cover `&T` and `Box<T>`).
struct SharedApp(Arc<dyn Application + Send + Sync>);

impl Application for SharedApp {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        self.0.run(os, pid)
    }
}

/// One execution path's flattened outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathOutcome {
    /// Path name (`sequential`, `executor`, `suite`, `planner-cold`,
    /// `planner-warm`, `budgeted`, `batch-oracle`, `pruned`).
    pub path: String,
    /// Canonical digest lines, one per injected record, in plan order.
    pub lines: Vec<String>,
    /// Runs that occupied a worker slot on this path.
    pub runs_executed: usize,
    /// Records replayed from the planner cache on this path.
    pub cache_hits: usize,
    /// Records synthesized by the static analyzer on this path.
    pub pruned: usize,
}

/// A cross-path disagreement (or a panic) on one scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// The diverging path.
    pub path: String,
    /// What differed (first differing digest line, or the panic payload).
    pub detail: String,
    /// The scenario's RNG seed, for exact replay.
    pub seed: u64,
    /// Minimal world diff from pristine that still reproduces the
    /// divergence (filled by [`run_corpus`]'s shrinking pass).
    pub minimized: Vec<String>,
}

/// The differential verdict on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario identifier.
    pub id: String,
    /// Per-scenario RNG seed (logged for exact CI replay).
    pub seed: u64,
    /// Perturbable interaction points the baseline exposed.
    pub sites: usize,
    /// Faults injected by the baseline.
    pub injected: usize,
    /// Injected runs that violated the policy.
    pub violated: usize,
    /// Violations in the unperturbed run.
    pub clean_violations: usize,
    /// The scenario's Figure 2 adequacy point.
    pub adequacy: AdequacyPoint,
    /// Per-EAI-category `(injected, violated)` counts.
    pub by_category: Vec<(String, usize, usize)>,
    /// Every path's flattened outcome (baseline first).
    pub paths: Vec<PathOutcome>,
    /// The first divergence, if any path disagreed with the baseline.
    pub divergence: Option<Divergence>,
}

/// Canonical digest of one record: every observable field *except*
/// `cache_hit` and `pruned` (replay/prune provenance is the one legitimate
/// cross-path difference) and the free-text description (redundant with
/// `fault_id`).
fn record_line(r: &FaultRecord) -> String {
    let violations = serde_json::to_string(&r.violations).expect("verdicts serialize");
    format!(
        "{}|{}|{}|{}|{:?}|{:?}|{}|{}",
        r.site, r.occurrence, r.fault_id, r.applied, r.exit, r.crashed, r.audit_events, violations
    )
}

fn report_outcome(path: &str, report: &CampaignReport) -> PathOutcome {
    PathOutcome {
        path: path.to_string(),
        lines: report.records.iter().map(record_line).collect(),
        runs_executed: report.runs_executed(),
        cache_hits: report.cache_hits(),
        pruned: report.pruned(),
    }
}

/// The campaign options every path shares: strike every traced occurrence
/// of every site (the corpus is biased toward occurrence-sensitive shapes,
/// so first-hit-only plans would under-exercise it). Static pruning is off
/// so paths 1–7 stay the exhaustive ground truth; path #8 turns it back on
/// and must agree with them byte-for-byte.
fn base_options() -> CampaignOptions {
    CampaignOptions {
        max_occurrences_per_site: usize::MAX,
        dedup: false,
        static_prune: false,
        ..CampaignOptions::default()
    }
}

/// Runs one path, converting a panic anywhere inside the engine into a
/// divergence instead of tearing the harness down.
fn run_path<T>(name: &str, seed: u64, f: impl FnOnce() -> T) -> Result<T, Divergence> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let text = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        Divergence {
            path: name.to_string(),
            detail: format!("panicked: {text}"),
            seed,
            minimized: Vec::new(),
        }
    })
}

/// First difference between a path's lines and the baseline's, as a
/// replay-ready description.
fn diff_lines(baseline: &PathOutcome, candidate: &PathOutcome, seed: u64) -> Option<Divergence> {
    if baseline.lines == candidate.lines {
        return None;
    }
    let detail = if baseline.lines.len() != candidate.lines.len() {
        format!(
            "record count: baseline {} vs {} {}",
            baseline.lines.len(),
            candidate.path,
            candidate.lines.len()
        )
    } else {
        let i = baseline
            .lines
            .iter()
            .zip(&candidate.lines)
            .position(|(a, b)| a != b)
            .expect("unequal line vectors differ somewhere");
        format!(
            "record {i}: baseline `{}` vs {} `{}`",
            baseline.lines[i], candidate.path, candidate.lines[i]
        )
    };
    Some(Divergence {
        path: candidate.path.clone(),
        detail,
        seed,
        minimized: Vec::new(),
    })
}

/// Runs `scenario` through every execution path and compares verdicts.
///
/// Paths, all against the same materialized setup:
///
/// 1. `sequential` — the baseline: in-order, no dedup, no cache;
/// 2. `executor` — the pooled work-stealing executor;
/// 3. `suite` — the suite's expanding plan/inject pool (suite-scoped cache);
/// 4. `planner-cold` / `planner-warm` — canonical-fault dedup plus a fresh
///    [`ResultCache`], executed twice (the warm pass must replay, and still
///    agree byte-for-byte);
/// 5. `budgeted` — the adaptive planner with a budget covering the whole
///    plan;
/// 6. `batch-oracle` — every injection re-run under the retired post-hoc
///    oracle, plus a clean-run incremental/batch cross-check;
/// 7. `pruned` — the static analyzer's pre-pruned plan (dedup on, so
///    canonical-alias replay composes with prune synthesis): every record
///    the analyzer refuses to execute must still carry the exhaustive
///    verdict, byte-for-byte.
pub fn differential_check(scenario: &Scenario, factory: AppFactory<'_>) -> ScenarioOutcome {
    let seed = scenario.seed;
    let app = factory(scenario);
    let mut paths: Vec<PathOutcome> = Vec::new();
    let mut divergence: Option<Divergence> = None;

    let outcome = |report: &CampaignReport, sites: usize| ScenarioOutcome {
        id: scenario.id.clone(),
        seed,
        sites,
        injected: report.injected(),
        violated: report.violated(),
        clean_violations: report.clean_violations,
        adequacy: report.adequacy(),
        by_category: report.by_category().into_iter().map(|(c, (i, v))| (c, i, v)).collect(),
        paths: Vec::new(),
        divergence: None,
    };

    let setup = match scenario.spec.materialize() {
        Ok(setup) => setup,
        Err(err) => {
            // Generator-invariant breach: surface it as a divergence rather
            // than panicking the sweep.
            return ScenarioOutcome {
                id: scenario.id.clone(),
                seed,
                sites: 0,
                injected: 0,
                violated: 0,
                clean_violations: 0,
                adequacy: AdequacyPoint::vacuous(1.0),
                by_category: Vec::new(),
                paths: Vec::new(),
                divergence: Some(Divergence {
                    path: "materialize".to_string(),
                    detail: format!("world failed to materialize: {err:?}"),
                    seed,
                    minimized: Vec::new(),
                }),
            };
        }
    };

    let session = |options: CampaignOptions| Session::from_setup(setup.clone()).with_options(options);

    // Path 1: sequential baseline.
    let baseline_report = match run_path("sequential", seed, || session(base_options()).execute(&*app)) {
        Ok(report) => report,
        Err(d) => {
            return ScenarioOutcome {
                id: scenario.id.clone(),
                seed,
                sites: 0,
                injected: 0,
                violated: 0,
                clean_violations: 0,
                adequacy: AdequacyPoint::vacuous(1.0),
                by_category: Vec::new(),
                paths: Vec::new(),
                divergence: Some(d),
            };
        }
    };
    let baseline = report_outcome("sequential", &baseline_report);
    let mut summary = outcome(&baseline_report, baseline_report.total_sites);
    paths.push(baseline.clone());

    let mut check = |name: &str, run: &mut dyn FnMut() -> PathOutcome| {
        if divergence.is_some() {
            return;
        }
        match run_path(name, seed, &mut *run) {
            Ok(candidate) => {
                if divergence.is_none() {
                    divergence = diff_lines(&baseline, &candidate, seed);
                }
                paths.push(candidate);
            }
            Err(d) => divergence = Some(d),
        }
    };

    // Path 2: pooled executor.
    check("executor", &mut || {
        let options = CampaignOptions {
            parallel: true,
            ..base_options()
        };
        report_outcome("executor", &session(options).execute(&*app))
    });

    // Path 3: the suite's expanding plan/inject pool (suite-scoped cache).
    check("suite", &mut || {
        let mut suite = Suite::new();
        suite.register_session(
            SharedApp(Arc::clone(&app)),
            Session::from_setup(setup.clone()).with_options(base_options()),
        );
        let report = suite.execute();
        let campaign = report.reports.first().expect("suite ran exactly one campaign");
        report_outcome("suite", campaign)
    });

    // Paths 4a/4b: dedup + memoizing planner, cold then warm.
    let cache = ResultCache::new();
    let planner_options = || CampaignOptions {
        dedup: true,
        cache: Some(cache.clone()),
        ..base_options()
    };
    check("planner-cold", &mut || {
        report_outcome("planner-cold", &session(planner_options()).execute(&*app))
    });
    check("planner-warm", &mut || {
        let report = session(planner_options()).execute(&*app);
        let warm = report_outcome("planner-warm", &report);
        assert!(
            report.injected() == 0 || report.cache_hits() > 0,
            "warm planner pass replayed nothing"
        );
        warm
    });

    // Path 5: budgeted adaptive execution, budget covering the whole plan.
    check("budgeted", &mut || {
        let options = CampaignOptions {
            dedup: true,
            plan_budget: Some(baseline_report.injected()),
            ..base_options()
        };
        report_outcome("budgeted", &session(options).execute(&*app))
    });

    // Path 6: the retired batch oracle, job by job, plus the clean run.
    check("batch-oracle", &mut || {
        let plan = session(base_options()).plan(&*app);
        let mut lines = Vec::new();
        for job in plan.jobs() {
            let (hook, fired) = InjectionHook::new(job.clone());
            let run = run_once_batch_oracle(&setup, &*app, Some(Box::new(hook)));
            let violations = serde_json::to_string(&run.violations).expect("verdicts serialize");
            lines.push(format!(
                "{}|{}|{}|{}|{:?}|{:?}|{}|{}",
                job.site,
                job.occurrence,
                job.fault.id,
                fired.get(),
                run.exit,
                run.crashed,
                run.os.audit.len(),
                violations
            ));
        }
        let clean_incremental = run_once(&setup, &*app, None);
        let clean_batch = run_once_batch_oracle(&setup, &*app, None);
        assert_eq!(
            serde_json::to_string(&clean_incremental.violations).expect("verdicts serialize"),
            serde_json::to_string(&clean_batch.violations).expect("verdicts serialize"),
            "clean run: incremental vs batch oracle verdicts differ"
        );
        let executed = lines.len();
        PathOutcome {
            path: "batch-oracle".to_string(),
            lines,
            runs_executed: executed,
            cache_hits: 0,
            pruned: 0,
        }
    });

    // Path 8: the statically pre-pruned plan. The analyzer may only drop
    // `ProvablyInert` jobs, whose synthesized records must match the
    // exhaustive baseline's byte-for-byte — any unsound classification
    // diverges here and gets shrunk to a minimal world.
    check("pruned", &mut || {
        let options = CampaignOptions {
            dedup: true,
            static_prune: true,
            ..base_options()
        };
        report_outcome("pruned", &session(options).execute(&*app))
    });

    summary.paths = paths;
    summary.divergence = divergence;
    summary
}

/// Sweeps a synthesized corpus through [`differential_check`], shrinking
/// every divergence to a minimal world diff, and rolls up the dashboard.
pub fn run_corpus(config: &super::CorpusConfig, factory: AppFactory<'_>) -> CorpusReport {
    let scenarios = super::generate::synthesize(config);
    let mut outcomes = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        let mut outcome = differential_check(scenario, factory);
        if let Some(d) = &mut outcome.divergence {
            let failing_path = d.path.clone();
            let result = shrink::shrink(scenario, &mut |candidate| {
                differential_check(candidate, factory)
                    .divergence
                    .is_some_and(|cd| cd.path == failing_path)
            });
            d.minimized = result.diff_from_pristine;
        }
        outcomes.push(outcome);
    }
    CorpusReport::from_outcomes(config.seed, &outcomes)
}
