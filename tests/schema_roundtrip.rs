//! Schema regression: the machine-readable artifacts (`SUITE_report.json`,
//! `CORPUS_report.json`, and the persistent store's on-disk records) must
//! round-trip — serialize → parse → re-serialize byte-identical, and the
//! parsed value must equal the original — so a field rename or
//! representation change in any artifact breaks CI here instead of
//! silently breaking dashboard consumers or warm store replays.

use epa::apps::ScriptedApp;
use epa::core::corpus::{run_corpus, synthesize_one, CorpusConfig, CorpusReport, DEFAULT_CORPUS_SEED};
use epa::core::engine::{Session, Suite, SuiteReport};
use serde::{Deserialize, Serialize};

/// Serialize → parse → re-serialize; both the bytes and the value must
/// survive unchanged.
fn assert_roundtrips<T>(what: &str, report: &T)
where
    T: Serialize + Deserialize + PartialEq + std::fmt::Debug,
{
    let first = serde_json::to_string_pretty(report).expect("reports serialize");
    let parsed: T =
        serde_json::from_str(&first).unwrap_or_else(|e| panic!("{what}: the emitted JSON no longer parses: {e}"));
    assert_eq!(&parsed, report, "{what}: parsing lost or mangled a field");
    let second = serde_json::to_string_pretty(&parsed).expect("reports re-serialize");
    assert_eq!(first, second, "{what}: re-serialization is not byte-identical");
    assert!(first.len() > 2, "{what}: the artifact is empty");
}

/// The suite artifact, exercised over two corpus campaigns (same shape as
/// the eight-app `SUITE_report.json`, at test-budget scale).
#[test]
fn suite_report_schema_roundtrips() {
    let mut suite = Suite::new().sequential();
    for index in [1usize, 4] {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, index);
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        suite.register_session(ScriptedApp::for_scenario(&scenario), Session::from_setup(setup));
    }
    let report: SuiteReport = suite.execute();
    assert_eq!(report.reports.len(), 2);
    assert_roundtrips("SUITE_report.json", &report);
}

/// The persistent store's on-disk record format: encode → decode →
/// re-encode must be byte-identical (the content address is the entry
/// text), and a record stamped with a foreign format version must be
/// rejected outright — never half-parsed into a wrong digest.
#[test]
fn store_entry_wire_format_roundtrips_and_rejects_version_skew() {
    use epa::core::engine::{FaultKey, RunDigest};
    use epa::core::store::{decode_entry, encode_entry, EntryError};

    let scope = 0xdead_beef_cafe_f00d_u64;
    let key = FaultKey::synthetic("site=lpr:create occ=1 fault=F-E-7");
    let digest = RunDigest {
        applied: true,
        exit: Some(1),
        crashed: None,
        audit_events: 42,
        violations: Vec::new(),
    };
    let first = encode_entry(scope, &key, &digest);
    let parsed = decode_entry(&first).expect("store entry: the emitted record no longer parses");
    assert_eq!(parsed.scope, scope, "store entry: parsing mangled the scope");
    assert_eq!(parsed.key, key.repr(), "store entry: parsing mangled the key text");
    assert_eq!(
        parsed.digest, digest,
        "store entry: parsing lost or mangled a digest field"
    );
    let second = encode_entry(parsed.scope, &FaultKey::synthetic(&parsed.key), &parsed.digest);
    assert_eq!(first, second, "store entry: re-serialization is not byte-identical");

    let skewed = first.replacen("epa-store-entry v1", "epa-store-entry v999", 1);
    assert!(
        matches!(decode_entry(&skewed), Err(EntryError::Version { .. })),
        "store entry: a foreign format version must be rejected as version skew"
    );
}

/// The corpus artifact, including the nested adequacy points, histograms
/// and per-scenario rows of the dashboard.
#[test]
fn corpus_report_schema_roundtrips() {
    let factory = ScriptedApp::factory();
    let report: CorpusReport = run_corpus(
        &CorpusConfig {
            seed: DEFAULT_CORPUS_SEED,
            count: 6,
        },
        &factory,
    );
    assert_eq!(report.scenarios, 6);
    assert_eq!(report.divergences, 0, "the pinned corpus slice must not diverge");
    assert_roundtrips("CORPUS_report.json", &report);
}
