//! UNIX permission bits and access checks.
//!
//! Several of the paper's Table 6 perturbations are pure permission-bit
//! faults ("flip the permission bit", "change mask to 0"), so mode handling
//! is modeled at full fidelity: twelve bits (setuid/setgid/sticky plus
//! rwx for user/group/other), umask application, and the standard owner →
//! group → other access-check resolution with the superuser bypass.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cred::{Credentials, Gid, Uid};

/// Kinds of access a credential can request on an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Access {
    /// Read the object.
    Read,
    /// Write / truncate the object (or create/remove entries in a directory).
    Write,
    /// Execute the object (or traverse a directory).
    Exec,
}

/// A twelve-bit UNIX file mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mode(u16);

impl Mode {
    /// Set-user-id bit.
    pub const SETUID: u16 = 0o4000;
    /// Set-group-id bit.
    pub const SETGID: u16 = 0o2000;
    /// Sticky bit (restricted deletion on directories, as in `/tmp`).
    pub const STICKY: u16 = 0o1000;

    /// Builds a mode from octal bits; bits above 0o7777 are masked off.
    pub const fn new(bits: u16) -> Mode {
        Mode(bits & 0o7777)
    }

    /// The raw bits.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// True when the setuid bit is set.
    pub fn is_setuid(self) -> bool {
        self.0 & Self::SETUID != 0
    }

    /// True when the setgid bit is set.
    pub fn is_setgid(self) -> bool {
        self.0 & Self::SETGID != 0
    }

    /// True when the sticky bit is set.
    pub fn is_sticky(self) -> bool {
        self.0 & Self::STICKY != 0
    }

    /// Applies a umask (clears the bits set in `umask`), as `open`/`creat` do.
    pub fn apply_umask(self, umask: u16) -> Mode {
        Mode(self.0 & !(umask & 0o777))
    }

    /// True when "other" holds the given access.
    pub fn other_allows(self, access: Access) -> bool {
        self.class_allows(access, 0)
    }

    /// True when the group class holds the given access.
    pub fn group_allows(self, access: Access) -> bool {
        self.class_allows(access, 3)
    }

    /// True when the owner class holds the given access.
    pub fn owner_allows(self, access: Access) -> bool {
        self.class_allows(access, 6)
    }

    fn class_allows(self, access: Access, shift: u16) -> bool {
        let bit = match access {
            Access::Read => 0o4,
            Access::Write => 0o2,
            Access::Exec => 0o1,
        };
        (self.0 >> shift) & bit != 0
    }

    /// True when any of the three execute bits is set.
    pub fn any_exec(self) -> bool {
        self.0 & 0o111 != 0
    }

    /// True when "other" can write — the classic "world-writable" hazard.
    pub fn world_writable(self) -> bool {
        self.other_allows(Access::Write)
    }

    /// Standard UNIX access resolution for `cred` against an object owned by
    /// `owner:group`.
    ///
    /// Root may read and write anything and may execute anything with at
    /// least one execute bit. Otherwise exactly one permission class applies:
    /// owner if `euid` matches, else group if `egid` matches, else other.
    pub fn grants(self, owner: Uid, group: Gid, cred: &Credentials, access: Access) -> bool {
        if cred.euid.is_root() {
            return match access {
                Access::Exec => self.any_exec(),
                _ => true,
            };
        }
        if cred.euid == owner {
            self.owner_allows(access)
        } else if cred.egid == group {
            self.group_allows(access)
        } else {
            self.other_allows(access)
        }
    }

    /// Mode with the write bits removed everywhere — a "permission flip"
    /// perturbation that makes an object unwritable.
    pub fn without_write(self) -> Mode {
        Mode(self.0 & !0o222)
    }

    /// Mode with the read bits removed everywhere.
    pub fn without_read(self) -> Mode {
        Mode(self.0 & !0o444)
    }

    /// Mode with the exec bits removed everywhere.
    pub fn without_exec(self) -> Mode {
        Mode(self.0 & !0o111)
    }

    /// Mode with world write added — the perturbation that makes an object
    /// attacker-modifiable.
    pub fn with_world_write(self) -> Mode {
        Mode(self.0 | 0o002)
    }
}

impl Default for Mode {
    fn default() -> Self {
        Mode::new(0o644)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04o}", self.0)
    }
}

impl From<u16> for Mode {
    fn from(bits: u16) -> Self {
        Mode::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(uid: u32, gid: u32) -> Credentials {
        Credentials::user(Uid(uid), Gid(gid))
    }

    #[test]
    fn owner_class_takes_precedence() {
        // Owner has no read bit, but other does: owner is still denied.
        let m = Mode::new(0o044);
        assert!(!m.grants(Uid(10), Gid(10), &user(10, 10), Access::Read));
        assert!(m.grants(Uid(10), Gid(10), &user(99, 99), Access::Read));
    }

    #[test]
    fn group_class_applies_when_not_owner() {
        let m = Mode::new(0o640);
        assert!(m.grants(Uid(10), Gid(20), &user(11, 20), Access::Read));
        assert!(!m.grants(Uid(10), Gid(20), &user(11, 20), Access::Write));
        assert!(!m.grants(Uid(10), Gid(20), &user(11, 21), Access::Read));
    }

    #[test]
    fn root_bypasses_read_write_but_not_exec_without_bits() {
        let m = Mode::new(0o600);
        let root = Credentials::root();
        assert!(m.grants(Uid(10), Gid(10), &root, Access::Read));
        assert!(m.grants(Uid(10), Gid(10), &root, Access::Write));
        assert!(!m.grants(Uid(10), Gid(10), &root, Access::Exec));
        let mx = Mode::new(0o700);
        assert!(mx.grants(Uid(10), Gid(10), &root, Access::Exec));
    }

    #[test]
    fn umask_clears_bits() {
        let m = Mode::new(0o666).apply_umask(0o022);
        assert_eq!(m.bits(), 0o644);
        // umask never clears the setuid/setgid/sticky bits.
        let s = Mode::new(0o4777).apply_umask(0o777);
        assert_eq!(s.bits(), 0o4000);
    }

    #[test]
    fn special_bits() {
        assert!(Mode::new(0o4755).is_setuid());
        assert!(Mode::new(0o2755).is_setgid());
        assert!(Mode::new(0o1777).is_sticky());
        assert!(!Mode::new(0o755).is_setuid());
    }

    #[test]
    fn perturbation_helpers() {
        let m = Mode::new(0o755);
        assert_eq!(m.without_write().bits(), 0o555);
        assert_eq!(m.without_read().bits(), 0o311);
        assert_eq!(m.without_exec().bits(), 0o644);
        assert!(m.with_world_write().world_writable());
        assert!(!m.world_writable());
    }

    #[test]
    fn display_is_octal() {
        assert_eq!(Mode::new(0o4755).to_string(), "4755");
        assert_eq!(Mode::new(0o644).to_string(), "0644");
    }

    #[test]
    fn new_masks_extra_bits() {
        assert_eq!(Mode::new(0o77_777).bits() & !0o7777, 0);
    }
}
