//! The `std::sync` facade: plain re-exports in normal builds, model
//! types (which forward to std outside an active execution) under the
//! `model-check` feature. Either way the importable surface is the
//! same: `Arc`, `Weak`, `Mutex`, `RwLock`, `Condvar`, `OnceLock`, the
//! poison/lock result types, and the `atomic` and `mpsc` submodules.

#[cfg(feature = "model-check")]
#[path = "sync_model.rs"]
mod imp;
#[cfg(not(feature = "model-check"))]
#[path = "sync_std.rs"]
mod imp;

pub use imp::*;
