//! Processes: credentials, environment variables, working directory,
//! captured output, and run budgets.
//!
//! The process model is single-program-per-run: a campaign spawns the
//! application under test as one process whose credentials follow the SUID
//! semantics of the program file it was spawned from. Helper programs the
//! application `exec`s are *recorded* (for the policy oracle) rather than
//! scheduled — the interesting security decisions all happen before or at
//! the exec boundary.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::cred::Credentials;
use crate::data::{Data, Label};
use crate::error::SysResult;
use crate::fs::InodeId;
use crate::syserr;

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// Default syscall budget per process; generous, exists only so that a
/// perturbed application stuck in a retry loop cannot wedge a campaign.
pub const DEFAULT_SYSCALL_BUDGET: usize = 100_000;

/// A process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Its pid.
    pub pid: Pid,
    /// Real/effective identities.
    pub cred: Credentials,
    /// Logical current working directory (textual).
    pub cwd: String,
    /// Physical inode of the current working directory.
    pub cwd_inode: InodeId,
    /// Taint labels carried by the path the process last `chdir`ed through;
    /// relative-path operations inherit them (the write lands wherever the
    /// tainted directory name pointed).
    pub cwd_taint: BTreeSet<Label>,
    /// File-creation mask.
    pub umask: u16,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Argument vector (argv[1..]; the program name is implicit).
    pub args: Vec<String>,
    /// Captured standard output (one entry per `Print`).
    pub stdout: Vec<Data>,
    /// Exit status once the program finished.
    pub exit: Option<i32>,
    /// Remaining syscall budget.
    pub budget: usize,
}

impl Process {
    /// The captured stdout as one string.
    pub fn stdout_text(&self) -> String {
        self.stdout.iter().map(Data::text).collect::<Vec<_>>().join("")
    }

    /// Decrements the budget, failing with `EAGAIN` at exhaustion.
    pub fn spend_budget(&mut self) -> SysResult<()> {
        if self.budget == 0 {
            return Err(syserr!(Eagain, "syscall budget exhausted for {}", self.pid));
        }
        self.budget -= 1;
        Ok(())
    }
}

/// The process table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessTable {
    procs: BTreeMap<u32, Process>,
    next: u32,
}

impl ProcessTable {
    /// An empty table.
    pub fn new() -> Self {
        ProcessTable {
            procs: BTreeMap::new(),
            next: 100,
        }
    }

    /// Inserts a new process built by the caller; assigns the pid.
    pub fn insert(
        &mut self,
        cred: Credentials,
        cwd: String,
        cwd_inode: InodeId,
        umask: u16,
        env: BTreeMap<String, String>,
        args: Vec<String>,
    ) -> Pid {
        let pid = Pid(self.next);
        self.next += 1;
        self.procs.insert(
            pid.0,
            Process {
                pid,
                cred,
                cwd,
                cwd_inode,
                cwd_taint: BTreeSet::new(),
                umask,
                env,
                args,
                stdout: Vec::new(),
                exit: None,
                budget: DEFAULT_SYSCALL_BUDGET,
            },
        );
        pid
    }

    /// Borrows a process.
    pub fn get(&self, pid: Pid) -> SysResult<&Process> {
        self.procs
            .get(&pid.0)
            .ok_or_else(|| syserr!(Ebadf, "no such process {pid}"))
    }

    /// Mutably borrows a process.
    pub fn get_mut(&mut self, pid: Pid) -> SysResult<&mut Process> {
        self.procs
            .get_mut(&pid.0)
            .ok_or_else(|| syserr!(Ebadf, "no such process {pid}"))
    }

    /// Number of processes ever spawned in this table.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when no process exists.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Iterates processes in pid order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Gid, Uid};

    #[test]
    fn insert_assigns_increasing_pids() {
        let mut t = ProcessTable::new();
        let a = t.insert(
            Credentials::root(),
            "/".into(),
            InodeId(1),
            0o22,
            BTreeMap::new(),
            vec![],
        );
        let b = t.insert(
            Credentials::user(Uid(5), Gid(5)),
            "/".into(),
            InodeId(1),
            0o22,
            BTreeMap::new(),
            vec![],
        );
        assert!(b.0 > a.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn budget_exhaustion_is_eagain() {
        let mut t = ProcessTable::new();
        let pid = t.insert(Credentials::root(), "/".into(), InodeId(1), 0, BTreeMap::new(), vec![]);
        t.get_mut(pid).unwrap().budget = 1;
        assert!(t.get_mut(pid).unwrap().spend_budget().is_ok());
        let e = t.get_mut(pid).unwrap().spend_budget().unwrap_err();
        assert_eq!(e.errno, crate::error::Errno::Eagain);
    }

    #[test]
    fn stdout_text_concatenates() {
        let mut t = ProcessTable::new();
        let pid = t.insert(Credentials::root(), "/".into(), InodeId(1), 0, BTreeMap::new(), vec![]);
        let p = t.get_mut(pid).unwrap();
        p.stdout.push(Data::from("a\n"));
        p.stdout.push(Data::from("b\n"));
        assert_eq!(p.stdout_text(), "a\nb\n");
    }

    #[test]
    fn missing_pid_is_error() {
        let t = ProcessTable::new();
        assert!(t.get(Pid(42)).is_err());
    }
}
