//! Cross-process warm replay: a suite executed against a persistent store
//! in one "process" (one `ResultCache::persistent` handle, dropped
//! entirely) must replay in a fresh one with **zero** executed runs and
//! byte-identical verdicts — the `cache_hit` provenance flag is the only
//! permitted difference. Also covers the conservative-miss contract end to
//! end: a corrupted entry re-executes exactly its own job, heals the
//! store, and never changes a verdict.

use std::path::{Path, PathBuf};

use epa::apps::ScriptedApp;
use epa::core::corpus::{synthesize_one, DEFAULT_CORPUS_SEED};
use epa::core::engine::{ResultCache, Session, Suite, SuiteReport};
use epa::core::store::{DiskStore, ResultStore, SuiteManifest};

/// An empty per-test store directory under `target/` (kept out of the
/// source tree; recreated from scratch on every run).
fn fresh_store_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join(format!("test-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The two-scenario corpus suite the schema tests also use, wired to a
/// fresh persistent cache handle over `dir` — building it anew per call is
/// exactly the cross-process shape: no memory is shared between calls.
fn corpus_suite(dir: &Path) -> Suite {
    let cache = ResultCache::persistent(dir).expect("the test store directory opens");
    let mut suite = Suite::new().sequential().with_result_cache(cache);
    for index in [1usize, 4] {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, index);
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        suite.register_session(ScriptedApp::for_scenario(&scenario), Session::from_setup(setup));
    }
    suite
}

/// The report serialized with every record's `cache_hit` flag cleared:
/// replay provenance is the one field a warm run may legitimately change.
fn stripped(report: &SuiteReport) -> String {
    let mut normalized = report.clone();
    for campaign in &mut normalized.reports {
        for record in &mut campaign.records {
            record.cache_hit = false;
        }
    }
    serde_json::to_string_pretty(&normalized).expect("suite reports serialize")
}

/// Every `*.entry` file below the store root, for targeted corruption.
fn entry_files(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(listing) = std::fs::read_dir(&dir) else { continue };
        for entry in listing.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "entry") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

#[test]
fn a_fresh_process_replays_the_suite_with_zero_executed_runs() {
    let dir = fresh_store_dir("replay");

    // "Process one": execute cold, persist every digest and the manifest.
    let cold_suite = corpus_suite(&dir);
    let cold = cold_suite.execute();
    let manifest = cold_suite.manifest();
    manifest.write_to(&dir).expect("the campaign manifest writes");
    assert!(cold.total_runs_executed() > 0, "the cold pass must actually execute");
    drop(cold_suite); // nothing in memory survives past this line

    // "Process two": a brand-new suite and cache handle over the same dir.
    let warm_suite = corpus_suite(&dir);
    let warm = warm_suite.execute();
    assert_eq!(
        warm.total_runs_executed(),
        0,
        "a warm re-run over a populated store must execute nothing"
    );
    assert_eq!(cold.total_injected(), warm.total_injected());
    assert_eq!(cold.total_violated(), warm.total_violated());
    assert_eq!(
        stripped(&cold),
        stripped(&warm),
        "warm verdicts must be byte-identical to live execution (modulo cache_hit)"
    );

    // The lockfile contract: the persisted manifest matches the fresh
    // suite's plan and accounts for every key actually in the store.
    let reloaded = SuiteManifest::load_from(&dir)
        .expect("the manifest reads back")
        .expect("the manifest exists");
    assert_eq!(reloaded, manifest, "the manifest must round-trip through disk");
    assert_eq!(
        warm_suite.manifest(),
        manifest,
        "a fresh process must derive the identical manifest from the specs"
    );
    let store = DiskStore::open(&dir).expect("the populated store re-opens");
    let check = reloaded.verify(&store);
    assert!(check.is_complete(), "no manifest key may be missing from the store");
    assert_eq!(
        check.present,
        store.entries(),
        "the manifest must cover the whole store"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupted_entry_re_executes_only_its_own_job_and_heals_the_store() {
    let dir = fresh_store_dir("heal");
    let cold = corpus_suite(&dir).execute();

    // Bit-flip one persisted entry mid-body — a crash-truncated or
    // disk-damaged record.
    let entries = entry_files(&dir);
    assert!(!entries.is_empty(), "the cold pass must persist entries");
    let victim = &entries[entries.len() / 2];
    let mut bytes = std::fs::read(victim).expect("the victim entry reads");
    let flip = bytes.len() - 2;
    bytes[flip] ^= 0x40;
    std::fs::write(victim, &bytes).expect("the corrupted entry writes");

    // The damaged entry is detected, logged, and treated as a miss: the
    // warm pass re-executes exactly that one job, with verdicts unchanged.
    let warm = corpus_suite(&dir).execute();
    assert_eq!(
        warm.total_runs_executed(),
        1,
        "exactly the corrupted job must re-execute"
    );
    assert_eq!(
        stripped(&cold),
        stripped(&warm),
        "corruption must cause re-execution, never a wrong verdict"
    );

    // The re-execution wrote the entry back: the store is healed and the
    // next process replays everything again.
    assert!(victim.exists(), "the healed entry must be rewritten in place");
    let healed = corpus_suite(&dir).execute();
    assert_eq!(healed.total_runs_executed(), 0, "the store must be healed");
    assert_eq!(stripped(&cold), stripped(&healed));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_truncated_entry_is_a_conservative_miss_not_a_parse_panic() {
    let dir = fresh_store_dir("truncate");
    let cold = corpus_suite(&dir).execute();

    let entries = entry_files(&dir);
    let victim = &entries[0];
    let bytes = std::fs::read(victim).expect("the victim entry reads");
    std::fs::write(victim, &bytes[..bytes.len() / 2]).expect("the truncated entry writes");

    let warm = corpus_suite(&dir).execute();
    assert_eq!(warm.total_runs_executed(), 1, "the truncated job must re-execute");
    assert_eq!(stripped(&cold), stripped(&warm));

    let _ = std::fs::remove_dir_all(&dir);
}
