//! The two-dimensional test-adequacy metric (paper §3.2, Figure 2).
//!
//! * **Interaction coverage** — how many of the application's environment
//!   interaction points were perturbed;
//! * **Fault coverage** — what fraction of the injected faults the
//!   application tolerated (no security violation).
//!
//! The paper's Figure 2 divides the plane into four regions around its four
//! sample points: tests with low interaction coverage are *inadequate*
//! regardless of fault coverage; high interaction coverage with low fault
//! coverage marks an *insecure* application; high/high is the *safe* region.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A ratio with explicit numerator/denominator (so reports can show counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    /// Numerator.
    pub hits: usize,
    /// Denominator.
    pub total: usize,
}

impl Ratio {
    /// Builds a ratio.
    pub fn new(hits: usize, total: usize) -> Self {
        Ratio { hits, total }
    }

    /// The ratio as a float; 1.0 for an empty denominator (vacuous truth:
    /// nothing to cover means fully covered).
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.1}%)", self.hits, self.total, self.value() * 100.0)
    }
}

/// A point on the paper's Figure 2 plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdequacyPoint {
    /// Interaction coverage in `[0, 1]`.
    pub interaction: f64,
    /// Fault coverage in `[0, 1]`.
    pub fault: f64,
}

impl AdequacyPoint {
    /// Builds a point, clamping both coordinates into `[0, 1]`.
    pub fn new(interaction: f64, fault: f64) -> Self {
        AdequacyPoint {
            interaction: interaction.clamp(0.0, 1.0),
            fault: fault.clamp(0.0, 1.0),
        }
    }

    /// Classifies the point against thresholds.
    pub fn region(&self, thresholds: AdequacyThresholds) -> AdequacyRegion {
        let ic_high = self.interaction >= thresholds.interaction_high;
        let fc_high = self.fault >= thresholds.fault_high;
        match (ic_high, fc_high) {
            (false, false) => AdequacyRegion::Inadequate,
            (false, true) => AdequacyRegion::InadequateNarrow,
            (true, false) => AdequacyRegion::Insecure,
            (true, true) => AdequacyRegion::Safe,
        }
    }
}

impl fmt::Display for AdequacyPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(interaction={:.2}, fault={:.2})", self.interaction, self.fault)
    }
}

/// Thresholds dividing Figure 2 into its four regions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdequacyThresholds {
    /// Interaction coverage at or above this counts as "high".
    pub interaction_high: f64,
    /// Fault coverage at or above this counts as "high".
    pub fault_high: f64,
}

impl Default for AdequacyThresholds {
    fn default() -> Self {
        AdequacyThresholds {
            interaction_high: 0.75,
            fault_high: 0.9,
        }
    }
}

/// The four qualitative regions of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdequacyRegion {
    /// Point 1: low interaction and fault coverage — the test says little.
    Inadequate,
    /// Point 2: high fault coverage but few interactions perturbed — the
    /// unperturbed interactions remain unknown, so still inadequate.
    InadequateNarrow,
    /// Point 3: interactions well covered and many faults *not* tolerated —
    /// the application is likely vulnerable.
    Insecure,
    /// Point 4: interactions well covered and faults tolerated.
    Safe,
}

impl AdequacyRegion {
    /// The paper's sample-point number for this region (Figure 2).
    pub fn figure2_point(&self) -> u8 {
        match self {
            AdequacyRegion::Inadequate => 1,
            AdequacyRegion::InadequateNarrow => 2,
            AdequacyRegion::Insecure => 3,
            AdequacyRegion::Safe => 4,
        }
    }
}

impl fmt::Display for AdequacyRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdequacyRegion::Inadequate => "inadequate (low interaction, low fault coverage)",
            AdequacyRegion::InadequateNarrow => "inadequate (few interactions perturbed)",
            AdequacyRegion::Insecure => "insecure (faults not tolerated)",
            AdequacyRegion::Safe => "safe (high interaction and fault coverage)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_empty_denominator() {
        assert_eq!(Ratio::new(0, 0).value(), 1.0);
        assert_eq!(Ratio::new(1, 2).value(), 0.5);
        assert_eq!(Ratio::new(3, 4).to_string(), "3/4 (75.0%)");
    }

    #[test]
    fn four_regions_match_figure2_points() {
        let t = AdequacyThresholds::default();
        assert_eq!(AdequacyPoint::new(0.2, 0.3).region(t), AdequacyRegion::Inadequate);
        assert_eq!(
            AdequacyPoint::new(0.2, 0.95).region(t),
            AdequacyRegion::InadequateNarrow
        );
        assert_eq!(AdequacyPoint::new(0.9, 0.5).region(t), AdequacyRegion::Insecure);
        assert_eq!(AdequacyPoint::new(1.0, 1.0).region(t), AdequacyRegion::Safe);
        assert_eq!(AdequacyPoint::new(1.0, 1.0).region(t).figure2_point(), 4);
        assert_eq!(AdequacyPoint::new(0.1, 0.1).region(t).figure2_point(), 1);
    }

    #[test]
    fn point_clamps() {
        let p = AdequacyPoint::new(1.7, -0.3);
        assert_eq!(p.interaction, 1.0);
        assert_eq!(p.fault, 0.0);
    }

    #[test]
    fn thresholds_are_inclusive() {
        let t = AdequacyThresholds::default();
        assert_eq!(AdequacyPoint::new(0.75, 0.9).region(t), AdequacyRegion::Safe);
    }
}
