//! User identities and process credentials.
//!
//! The paper's case studies all revolve around *set-UID* programs: programs
//! that run with an effective user id (often root) different from the real
//! user id of the person who invoked them. The gap between `ruid` and `euid`
//! is exactly what turns an unhandled environment fault into a security
//! violation, so the credential model keeps both ids explicit.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A numeric user id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// True for uid 0.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

/// A numeric group id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Gid(pub u32);

impl Gid {
    /// The superuser's primary group.
    pub const ROOT: Gid = Gid(0);
}

impl fmt::Display for Gid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gid:{}", self.0)
    }
}

/// Real and effective identities of a running process.
///
/// # Examples
///
/// ```
/// use epa_sandbox::cred::{Credentials, Uid, Gid};
/// let student = Credentials::user(Uid(1001), Gid(100));
/// assert!(!student.is_privileged());
/// let suid = student.with_euid(Uid::ROOT);
/// assert!(suid.is_privileged() && suid.is_elevated());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Credentials {
    /// Real user id: who invoked the program.
    pub ruid: Uid,
    /// Effective user id: whose privilege the program exercises.
    pub euid: Uid,
    /// Real group id.
    pub rgid: Gid,
    /// Effective group id.
    pub egid: Gid,
}

impl Credentials {
    /// Ordinary (non-SUID) credentials for a user.
    pub fn user(uid: Uid, gid: Gid) -> Self {
        Credentials {
            ruid: uid,
            euid: uid,
            rgid: gid,
            egid: gid,
        }
    }

    /// Root credentials.
    pub fn root() -> Self {
        Credentials::user(Uid::ROOT, Gid::ROOT)
    }

    /// Returns a copy with the effective uid replaced (SUID execution).
    pub fn with_euid(mut self, euid: Uid) -> Self {
        self.euid = euid;
        self
    }

    /// Returns a copy with the effective gid replaced (SGID execution).
    pub fn with_egid(mut self, egid: Gid) -> Self {
        self.egid = egid;
        self
    }

    /// True when the process currently holds superuser privilege.
    pub fn is_privileged(&self) -> bool {
        self.euid.is_root()
    }

    /// True when effective identity differs from real identity — the
    /// process acts with privilege its invoker does not have.
    pub fn is_elevated(&self) -> bool {
        self.ruid != self.euid || self.rgid != self.egid
    }

    /// Credentials of the *invoker only* — used by the policy oracle to ask
    /// "could the real user have done this without the program's privilege?".
    pub fn invoker(&self) -> Credentials {
        Credentials::user(self.ruid, self.rgid)
    }
}

impl fmt::Display for Credentials {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ruid={} euid={} rgid={} egid={}",
            self.ruid.0, self.euid.0, self.rgid.0, self.egid.0
        )
    }
}

/// An account known to the sandbox.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    /// Numeric uid.
    pub uid: Uid,
    /// Primary group.
    pub gid: Gid,
    /// Login name.
    pub name: String,
    /// Home directory path.
    pub home: String,
}

/// The account database (a tiny `/etc/passwd`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserDb {
    by_uid: BTreeMap<u32, User>,
}

impl UserDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an account; replaces any previous account with that uid.
    pub fn add(&mut self, name: impl Into<String>, uid: Uid, gid: Gid, home: impl Into<String>) -> Uid {
        let user = User {
            uid,
            gid,
            name: name.into(),
            home: home.into(),
        };
        self.by_uid.insert(uid.0, user);
        uid
    }

    /// Looks up an account by uid.
    pub fn get(&self, uid: Uid) -> Option<&User> {
        self.by_uid.get(&uid.0)
    }

    /// Looks up an account by login name.
    pub fn by_name(&self, name: &str) -> Option<&User> {
        self.by_uid.values().find(|u| u.name == name)
    }

    /// Home directory of an account, if known.
    pub fn home_of(&self, uid: Uid) -> Option<&str> {
        self.get(uid).map(|u| u.home.as_str())
    }

    /// Iterates over accounts in uid order.
    pub fn iter(&self) -> impl Iterator<Item = &User> {
        self.by_uid.values()
    }

    /// Number of registered accounts.
    pub fn len(&self) -> usize {
        self.by_uid.len()
    }

    /// True when no accounts are registered.
    pub fn is_empty(&self) -> bool {
        self.by_uid.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suid_credentials_are_elevated_and_privileged() {
        let c = Credentials::user(Uid(500), Gid(500)).with_euid(Uid::ROOT);
        assert!(c.is_privileged());
        assert!(c.is_elevated());
        assert_eq!(c.invoker(), Credentials::user(Uid(500), Gid(500)));
    }

    #[test]
    fn plain_user_is_not_elevated() {
        let c = Credentials::user(Uid(500), Gid(500));
        assert!(!c.is_privileged());
        assert!(!c.is_elevated());
    }

    #[test]
    fn root_is_privileged_but_not_elevated() {
        let c = Credentials::root();
        assert!(c.is_privileged());
        assert!(!c.is_elevated());
    }

    #[test]
    fn sgid_only_counts_as_elevated() {
        let c = Credentials::user(Uid(500), Gid(500)).with_egid(Gid(7));
        assert!(c.is_elevated());
        assert!(!c.is_privileged());
    }

    #[test]
    fn userdb_lookup_by_name_and_uid() {
        let mut db = UserDb::new();
        db.add("alice", Uid(100), Gid(10), "/home/alice");
        db.add("bob", Uid(101), Gid(10), "/home/bob");
        assert_eq!(db.by_name("bob").unwrap().uid, Uid(101));
        assert_eq!(db.get(Uid(100)).unwrap().name, "alice");
        assert_eq!(db.home_of(Uid(101)), Some("/home/bob"));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn userdb_replaces_same_uid() {
        let mut db = UserDb::new();
        db.add("old", Uid(5), Gid(5), "/home/old");
        db.add("new", Uid(5), Gid(5), "/home/new");
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(Uid(5)).unwrap().name, "new");
    }
}
