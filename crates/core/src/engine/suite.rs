//! Suites: many `(application, world)` pairs executed as one batch.
//!
//! A [`Suite`] registers applications with their [`WorldSpec`]s (or
//! pre-built [`Session`]s) and executes every campaign in one call. All
//! planning and injected runs across every registered application flow
//! through **one suite-wide [`Executor`] queue** (worker count bounded by
//! the hardware — no per-application thread fan-out, no oversubscription).
//! Results stream out as [`SuiteEvent`]s the moment they are produced —
//! `AppStarted` markers first, per-fault records as they complete, one
//! finished report per application after — and aggregate into a
//! [`SuiteReport`] with cross-application coverage rollups, following the
//! suite-level adequacy view of Dass & Siami Namin ("Vulnerability Coverage
//! as an Adequacy Testing Criterion"): the unit of adequacy is the whole
//! scenario suite, not a single program.

use shim_sync::sync::Arc;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use epa_sandbox::app::Application;

use crate::campaign::{Campaign, CampaignPlan};
use crate::coverage::{AdequacyPoint, Ratio};
use crate::engine::executor::Executor;
use crate::engine::planner::{ResultCache, RunDigest, Schedule, YieldStats};
use crate::engine::session::Session;
use crate::engine::spec::{SpecError, WorldSpec};
use crate::inject::InjectionPlan;
use crate::report::{CampaignReport, FaultRecord};

/// An application paired with its frozen session.
struct SuiteEntry {
    app: Arc<dyn Application + Send + Sync>,
    session: Session,
}

/// One streamed suite result.
///
/// `#[non_exhaustive]`: the event stream grows with the engine (as
/// `AppStarted` did); downstream matches need a wildcard arm so new
/// variants are non-breaking.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SuiteEvent {
    /// One application's campaign entered the suite-wide queue (emitted
    /// before any of its records, from both the sequential and the pooled
    /// paths, so streaming consumers can render per-app progress).
    AppStarted {
        /// The application under test.
        app: String,
    },
    /// One injected run finished (streamed in completion order).
    Record {
        /// The application under test.
        app: String,
        /// The fault's outcome.
        record: FaultRecord,
    },
    /// One application's whole campaign finished.
    AppFinished {
        /// The application under test.
        app: String,
        /// Its full report.
        report: CampaignReport,
    },
}

/// A batch of `(application, world)` campaigns executed together.
#[derive(Default)]
pub struct Suite {
    entries: Vec<SuiteEntry>,
    sequential: bool,
    cache: ResultCache,
    workers: Option<usize>,
}

impl Suite {
    /// An empty suite with a fresh suite-scoped [`ResultCache`].
    pub fn new() -> Suite {
        Suite::default()
    }

    /// Replaces the suite-scoped result cache — hand the same cache to
    /// several suites (or keep it across repeated [`Suite::execute`] calls;
    /// the default cache already persists for the suite's lifetime) for
    /// cross-run memoization: any run whose `(setup fingerprint, FaultKey)`
    /// was executed before is replayed instead of re-executed.
    #[must_use]
    pub fn with_result_cache(mut self, cache: ResultCache) -> Suite {
        self.cache = cache;
        self
    }

    /// The suite-scoped result cache (e.g. for
    /// [`crate::engine::planner::ResultCache::stats`]).
    pub fn result_cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Layers the suite's result cache over a persistent
    /// [`crate::store::ResultStore`] backend: shorthand for
    /// [`Suite::with_result_cache`] with
    /// [`ResultCache::with_store`]. A warm backend turns the whole suite
    /// run into replays — zero executed jobs.
    #[must_use]
    pub fn with_store(self, store: Arc<dyn crate::store::ResultStore>) -> Suite {
        self.with_result_cache(ResultCache::with_store(store))
    }

    /// The lockfile-style manifest of this suite: per application, the
    /// memoization scope, the plan size, and every canonical executable
    /// store key — the exact entries a complete warm run needs (see
    /// [`crate::store::SuiteManifest::verify`]). Statically pruned jobs
    /// are excluded: they replay from synthesized digests and never touch
    /// the store. Planning is deterministic, so the manifest of a suite
    /// equals the manifest of its execution.
    pub fn manifest(&self) -> crate::store::SuiteManifest {
        use crate::store::{AppManifest, ManifestKey, SuiteManifest, MANIFEST_VERSION};
        let apps = self
            .entries
            .iter()
            .map(|e| {
                let mut campaign = e.session.campaign(e.app.as_ref() as &dyn Application);
                campaign.ensure_cache(self.cache.clone());
                let plan = campaign.plan();
                let jobs = plan.jobs();
                let schedule = campaign.schedule(&jobs);
                let pruned: std::collections::BTreeSet<usize> = schedule.pruned.iter().map(|(i, _)| *i).collect();
                let keys = (0..schedule.len())
                    .filter(|&i| schedule.canonical_of(i) == i && !pruned.contains(&i))
                    .map(|i| ManifestKey {
                        digest: format!("{}", schedule.key(i)),
                        key: schedule.key(i).repr().to_string(),
                    })
                    .collect();
                AppManifest {
                    app: e.app.name().to_string(),
                    scope: format!("{:016x}", campaign.scope()),
                    jobs: schedule.len(),
                    keys,
                }
            })
            .collect();
        SuiteManifest {
            version: MANIFEST_VERSION,
            apps,
        }
    }

    /// Registers an application with a declarative world.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] from materializing the spec.
    pub fn register(
        &mut self,
        app: impl Application + Send + 'static,
        spec: &WorldSpec,
    ) -> Result<&mut Suite, SpecError> {
        let session = Session::new(spec)?;
        Ok(self.register_session(app, session))
    }

    /// Registers an application with a pre-built session.
    pub fn register_session(&mut self, app: impl Application + Send + 'static, session: Session) -> &mut Suite {
        self.entries.push(SuiteEntry {
            app: Arc::new(app),
            session,
        });
        self
    }

    /// Number of registered campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered application names, in registration order.
    pub fn apps(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.app.name()).collect()
    }

    /// Runs the campaigns one at a time on the calling thread instead of
    /// fanning out (deterministic event order; useful for debugging).
    #[must_use]
    pub fn sequential(mut self) -> Suite {
        self.sequential = true;
        self
    }

    /// Pins the pooled path to an explicit worker count instead of the
    /// hardware/`EPA_WORKERS` default — how benches and the determinism
    /// tests measure 1/4/8-worker throughput on arbitrary machines.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Suite {
        self.workers = Some(workers);
        self
    }

    /// Executes every registered campaign, discarding the event stream.
    pub fn execute(&self) -> SuiteReport {
        self.execute_with(&mut |_| {})
    }

    /// Executes every registered campaign, streaming each [`SuiteEvent`] to
    /// `on_event` as it is produced. Every campaign's planning and injected
    /// runs share **one suite-wide [`Executor`] queue** bounded by
    /// `available_parallelism` workers (unless [`Suite::sequential`], which
    /// runs everything inline on the calling thread); the returned report
    /// is always in registration order and byte-identical between the two
    /// paths.
    pub fn execute_with(&self, on_event: &mut dyn FnMut(SuiteEvent)) -> SuiteReport {
        // Every campaign plans and executes through the suite-scoped result
        // cache (unless its session already carries an explicit one).
        let campaigns: Vec<Campaign<'_>> = self
            .entries
            .iter()
            .map(|e| {
                let mut campaign = e.session.campaign(e.app.as_ref() as &dyn Application);
                campaign.ensure_cache(self.cache.clone());
                campaign
            })
            .collect();

        if self.sequential {
            let mut reports = Vec::with_capacity(self.entries.len());
            for (entry, campaign) in self.entries.iter().zip(&campaigns) {
                let name = entry.app.name().to_string();
                on_event(SuiteEvent::AppStarted { app: name.clone() });
                let plan = campaign.plan();
                let report = campaign.execute_plan_with(&plan, &mut |r| {
                    on_event(SuiteEvent::Record {
                        app: name.clone(),
                        record: r.clone(),
                    });
                });
                on_event(SuiteEvent::AppFinished {
                    app: name,
                    report: report.clone(),
                });
                reports.push(report);
            }
            return SuiteReport { reports };
        }

        // The pooled path: one shared queue for the whole suite. Each
        // application contributes a planning job; completing it runs the
        // planner over its `(site, occurrence, fault)` jobs — cache hits
        // and dedup aliases replay inline on the calling thread, never
        // occupying a worker slot — and fans only the remaining canonical
        // misses back onto the same queue, so idle workers steal across
        // application boundaries and the slowest campaign no longer pins a
        // whole thread. A budgeted campaign enqueues one job at a time
        // (each pick feeds on the previous outcome) while other campaigns
        // keep the workers busy.
        for entry in &self.entries {
            on_event(SuiteEvent::AppStarted {
                app: entry.app.name().to_string(),
            });
        }
        let mut slots: Vec<AppSlot> = (0..self.entries.len()).map(|_| AppSlot::default()).collect();
        let seed: Vec<SuiteJob> = (0..self.entries.len()).map(SuiteJob::Plan).collect();
        let executor = match self.workers {
            Some(w) => Executor::with_workers(w),
            None => Executor::new(),
        };
        executor.run_expanding(
            seed,
            |job| match job {
                SuiteJob::Plan(app) => SuiteDone::Planned {
                    app,
                    plan: Box::new(campaigns[app].plan()),
                },
                SuiteJob::Inject { app, idx, plan } => SuiteDone::Ran {
                    app,
                    idx,
                    // Claim-aware: when several suites share one cache, a
                    // run another suite is executing right now is waited
                    // out and replayed instead of duplicated.
                    record: campaigns[app].run_job_cached(&plan),
                },
            },
            &mut |done| match done {
                SuiteDone::Planned { app, plan } => {
                    let name = self.entries[app].app.name();
                    let jobs = plan.jobs();
                    let schedule = campaigns[app].schedule(&jobs);
                    let slot = &mut slots[app];
                    slot.records = (0..jobs.len()).map(|_| None).collect();
                    slot.budget_left = campaigns[app].plan_budget();
                    slot.budgeted = slot.budget_left.is_some();
                    slot.remaining = schedule.pending.clone();
                    slot.plan = Some(plan);
                    // Statically pruned jobs (and their aliases) resolve
                    // inline from their synthesized clean-run digests.
                    for (idx, digest) in &schedule.pruned {
                        for &i in std::iter::once(idx).chain(schedule.aliases_of(*idx)) {
                            let record = digest.replay_pruned(&jobs[i]);
                            slot.stats.observe(record.category, !record.tolerated());
                            on_event(SuiteEvent::Record {
                                app: name.to_string(),
                                record: record.clone(),
                            });
                            slot.records[i] = Some(record);
                        }
                    }
                    // Cache replays (and their aliases) resolve inline.
                    for (idx, digest) in &schedule.resolved {
                        for &i in std::iter::once(idx).chain(schedule.aliases_of(*idx)) {
                            let record = digest.replay(&jobs[i]);
                            slot.stats.observe(record.category, !record.tolerated());
                            on_event(SuiteEvent::Record {
                                app: name.to_string(),
                                record: record.clone(),
                            });
                            slot.records[i] = Some(record);
                        }
                    }
                    slot.jobs = jobs;
                    slot.schedule = Some(schedule);
                    let follow_ups = slot.enqueue_next(app);
                    if slot.idle() {
                        finish_app(&campaigns[app], name, slot, on_event);
                    }
                    follow_ups
                }
                SuiteDone::Ran { app, idx, record } => {
                    let name = self.entries[app].app.name();
                    on_event(SuiteEvent::Record {
                        app: name.to_string(),
                        record: record.clone(),
                    });
                    let slot = &mut slots[app];
                    let schedule = slot.schedule.as_ref().expect("schedule arrives before its records");
                    slot.stats.observe(record.category, !record.tolerated());
                    let digest = RunDigest::of(&record);
                    campaigns[app].memoize(schedule.key(idx), digest.clone());
                    for &alias in schedule.aliases_of(idx) {
                        let replay = digest.replay(&slot.jobs[alias]);
                        on_event(SuiteEvent::Record {
                            app: name.to_string(),
                            record: replay.clone(),
                        });
                        slot.records[alias] = Some(replay);
                    }
                    slot.records[idx] = Some(record);
                    slot.outstanding -= 1;
                    let follow_ups = slot.enqueue_next(app);
                    if slot.idle() {
                        finish_app(&campaigns[app], name, slot, on_event);
                    }
                    follow_ups
                }
            },
        );
        SuiteReport {
            reports: slots
                .into_iter()
                .map(|s| s.report.expect("every campaign completes"))
                .collect(),
        }
    }
}

/// One unit of suite work on the shared queue.
enum SuiteJob {
    /// Trace application `app` and build its fault plan.
    Plan(usize),
    /// Run injection job `idx` of application `app`'s plan.
    Inject {
        app: usize,
        idx: usize,
        plan: InjectionPlan,
    },
}

/// A completed unit of suite work, back on the calling thread.
enum SuiteDone {
    Planned {
        app: usize,
        plan: Box<CampaignPlan>,
    },
    Ran {
        app: usize,
        idx: usize,
        record: FaultRecord,
    },
}

/// Per-application assembly state while the pooled suite runs.
#[derive(Default)]
struct AppSlot {
    plan: Option<Box<CampaignPlan>>,
    jobs: Vec<InjectionPlan>,
    schedule: Option<Schedule>,
    records: Vec<Option<FaultRecord>>,
    /// Pending canonical job indices not yet handed to the queue.
    remaining: Vec<usize>,
    /// Jobs on the queue (or running) whose results are still due.
    outstanding: usize,
    /// Runs this campaign may still execute (`None` = unbudgeted).
    budget_left: Option<usize>,
    /// Whether a budget was ever in force (a budget may legitimately leave
    /// record slots empty; an unbudgeted campaign must fill every one).
    budgeted: bool,
    stats: YieldStats,
    report: Option<CampaignReport>,
}

impl AppSlot {
    /// Moves schedulable canonical jobs from `remaining` onto the shared
    /// queue: all of them in plan order (exhaustive), or exactly one chosen
    /// by observed verdict yield (budgeted — each pick feeds on the
    /// previous outcome, so at most one of this campaign's jobs is in
    /// flight while other campaigns keep the workers busy).
    fn enqueue_next(&mut self, app: usize) -> Vec<SuiteJob> {
        match self.budget_left {
            None => {
                let drained = std::mem::take(&mut self.remaining);
                self.outstanding += drained.len();
                drained
                    .into_iter()
                    .map(|idx| SuiteJob::Inject {
                        app,
                        idx,
                        plan: self.jobs[idx].clone(),
                    })
                    .collect()
            }
            Some(0) => {
                self.remaining.clear();
                Vec::new()
            }
            Some(ref mut budget) => {
                if self.remaining.is_empty() || self.outstanding > 0 {
                    return Vec::new();
                }
                *budget -= 1;
                let pos = self.stats.pick(&self.remaining, &self.jobs);
                let idx = self.remaining.remove(pos);
                self.outstanding = 1;
                vec![SuiteJob::Inject {
                    app,
                    idx,
                    plan: self.jobs[idx].clone(),
                }]
            }
        }
    }

    /// True once planning happened, nothing is in flight, and nothing more
    /// will be enqueued — i.e. the campaign is ready to fold into a report.
    fn idle(&self) -> bool {
        self.schedule.is_some() && self.outstanding == 0 && self.remaining.is_empty() && self.report.is_none()
    }
}

/// Folds a finished application's records (already in plan order by index)
/// into its report and emits `AppFinished`.
fn finish_app(campaign: &Campaign<'_>, name: &str, slot: &mut AppSlot, on_event: &mut dyn FnMut(SuiteEvent)) {
    let plan = slot.plan.take().expect("plan arrives before its records");
    // Only a budget may legitimately drop jobs; an unbudgeted campaign
    // missing a record is an accounting bug and must fail loudly, not
    // silently truncate the report.
    let records: Vec<FaultRecord> = if slot.budgeted {
        slot.records.drain(..).flatten().collect()
    } else {
        slot.records
            .drain(..)
            .map(|r| r.expect("all records complete before the app finishes"))
            .collect()
    };
    let report = campaign.report_from(&plan, records);
    on_event(SuiteEvent::AppFinished {
        app: name.to_string(),
        report: report.clone(),
    });
    slot.report = Some(report);
}

/// The aggregated outcome of a suite run: per-application reports in
/// registration order plus cross-application rollups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// One campaign report per registered application.
    pub reports: Vec<CampaignReport>,
}

impl SuiteReport {
    /// Looks up one application's report by name.
    pub fn get(&self, app: &str) -> Option<&CampaignReport> {
        self.reports.iter().find(|r| r.app == app)
    }

    /// Total faults injected across the suite.
    pub fn total_injected(&self) -> usize {
        self.reports.iter().map(CampaignReport::injected).sum()
    }

    /// Total violating runs across the suite.
    pub fn total_violated(&self) -> usize {
        self.reports.iter().map(CampaignReport::violated).sum()
    }

    /// Total records replayed from the planner's result cache (or from an
    /// equivalent earlier job of the same plan) across the suite.
    pub fn total_cache_hits(&self) -> usize {
        self.reports.iter().map(CampaignReport::cache_hits).sum()
    }

    /// Total runs that actually executed across the suite — the planner's
    /// headline number: `total_injected - total_cache_hits`, never more
    /// than the exhaustive plan size.
    pub fn total_runs_executed(&self) -> usize {
        self.reports.iter().map(CampaignReport::runs_executed).sum()
    }

    /// Applications whose campaign surfaced at least one violation.
    pub fn vulnerable_apps(&self) -> Vec<&str> {
        self.reports
            .iter()
            .filter(|r| r.violated() > 0)
            .map(|r| r.app.as_str())
            .collect()
    }

    /// Suite-level fault coverage: tolerated / injected over every campaign.
    pub fn fault_coverage(&self) -> Ratio {
        let injected = self.total_injected();
        Ratio::new(injected - self.total_violated(), injected)
    }

    /// Suite-level interaction coverage: perturbed / perturbable sites over
    /// every campaign.
    pub fn interaction_coverage(&self) -> Ratio {
        Ratio::new(
            self.reports.iter().map(|r| r.perturbed_sites).sum(),
            self.reports.iter().map(|r| r.total_sites).sum(),
        )
    }

    /// The suite's aggregate adequacy point (cross-application rollup of
    /// the paper's Figure 2 metric). As with a single campaign, fault
    /// coverage is vacuously true over zero injections but a suite whose
    /// worlds exposed zero perturbable interaction points is
    /// [`crate::coverage::AdequacyRegion::Inadequate`], never Safe.
    pub fn adequacy(&self) -> AdequacyPoint {
        let fault = self.fault_coverage().value_or(1.0);
        match self.interaction_coverage().fraction() {
            Some(interaction) => AdequacyPoint::new(interaction, fault),
            None => AdequacyPoint::vacuous(fault),
        }
    }

    /// Per-category `(injected, violated)` counts rolled up across every
    /// campaign.
    pub fn by_category(&self) -> BTreeMap<String, (usize, usize)> {
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for report in &self.reports {
            for (category, (injected, violated)) in report.by_category() {
                let e = out.entry(category).or_insert((0, 0));
                e.0 += injected;
                e.1 += violated;
            }
        }
        out
    }

    /// A human-readable multi-line summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "suite: {} applications   injected: {}   violations: {}",
            self.reports.len(),
            self.total_injected(),
            self.total_violated()
        );
        if self.total_cache_hits() > 0 {
            let _ = writeln!(
                s,
                "  runs executed: {}   replayed from cache: {}",
                self.total_runs_executed(),
                self.total_cache_hits()
            );
        }
        let _ = writeln!(
            s,
            "  interaction coverage: {}   fault coverage: {}",
            self.interaction_coverage(),
            self.fault_coverage()
        );
        let _ = writeln!(
            s,
            "  {:<16} {:>8} {:>10} {:>7}   coverage (interaction, fault)",
            "app", "injected", "violations", "score"
        );
        for r in &self.reports {
            let _ = writeln!(
                s,
                "  {:<16} {:>8} {:>10} {:>7.3}   ({}, {})",
                r.app,
                r.injected(),
                r.violated(),
                r.vulnerability_score(),
                r.interaction_coverage(),
                r.fault_coverage()
            );
        }
        let _ = writeln!(s, "  per-category rollup:");
        for (category, (injected, violated)) in self.by_category() {
            let _ = writeln!(s, "    {category:<28} {injected:>4} injected  {violated:>3} violations");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EaiCategory, IndirectKind};

    fn record(violated: bool) -> FaultRecord {
        FaultRecord {
            site: "s".into(),
            occurrence: 0,
            fault_id: "f".into(),
            category: EaiCategory::Indirect(IndirectKind::UserInput),
            description: String::new(),
            applied: true,
            exit: Some(0),
            crashed: None,
            audit_events: 1,
            cache_hit: false,
            pruned: false,
            violations: if violated {
                vec![epa_sandbox::policy::Verdict::from_violation(
                    epa_sandbox::policy::Violation::new(
                        epa_sandbox::policy::ViolationKind::Disclosure,
                        "R2",
                        "leak",
                        0,
                    ),
                )]
            } else {
                Vec::new()
            },
        }
    }

    fn report(app: &str, records: Vec<FaultRecord>) -> CampaignReport {
        CampaignReport {
            app: app.into(),
            total_sites: 4,
            perturbed_sites: 2,
            clean_violations: 0,
            records,
        }
    }

    #[test]
    fn rollups_aggregate_across_reports() {
        let suite = SuiteReport {
            reports: vec![
                report("a", vec![record(true), record(false)]),
                report("b", vec![record(false), record(false)]),
            ],
        };
        assert_eq!(suite.total_injected(), 4);
        assert_eq!(suite.total_violated(), 1);
        assert_eq!(suite.vulnerable_apps(), vec!["a"]);
        assert_eq!(suite.fault_coverage().fraction(), Some(0.75));
        assert_eq!(suite.interaction_coverage().fraction(), Some(0.5));
        let by_cat = suite.by_category();
        assert_eq!(by_cat.len(), 1);
        assert_eq!(by_cat.values().next(), Some(&(4usize, 1usize)));
        assert!(suite.get("b").is_some());
        assert!(suite.get("zzz").is_none());
        let text = suite.render_text();
        assert!(text.contains("suite: 2 applications"));
        assert!(text.contains("per-category rollup"));
    }

    #[test]
    fn cache_rollups_count_replays() {
        let mut a = report("a", vec![record(true), record(false)]);
        a.records[1].cache_hit = true;
        let suite = SuiteReport {
            reports: vec![a, report("b", vec![record(false)])],
        };
        assert_eq!(suite.total_injected(), 3);
        assert_eq!(suite.total_cache_hits(), 1);
        assert_eq!(suite.total_runs_executed(), 2);
        let text = suite.render_text();
        assert!(text.contains("runs executed: 2   replayed from cache: 1"), "{text}");
    }

    #[test]
    fn empty_suite_rolls_up_vacuous_not_safe() {
        use crate::coverage::{AdequacyRegion, AdequacyThresholds};
        let suite = SuiteReport { reports: vec![] };
        assert_eq!(suite.interaction_coverage().fraction(), None);
        let point = suite.adequacy();
        assert!(point.vacuous);
        assert_eq!(point.region(AdequacyThresholds::default()), AdequacyRegion::Inadequate);
        let text = suite.render_text();
        assert!(text.contains("0/0 (n/a)"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }
}
