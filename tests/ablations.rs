//! Integration: the design-choice ablations DESIGN.md calls out.

use epa_bench::{patterns, placement};

#[test]
fn placement_matters_direct_faults_must_land_before_the_point() {
    // Paper §3.3 step 6: direct faults inject before, indirect after. The
    // ablation flips direct faults to after-the-point and all four lpr
    // detections disappear.
    let r = placement();
    assert_eq!(r.injected, 4);
    assert_eq!(r.before_violations, 4);
    assert_eq!(r.after_violations, 0);
}

#[test]
fn semantic_patterns_beat_random_input_at_equal_budget() {
    // Paper §3.1: faults follow semantic patterns "already observed" rather
    // than random perturbation. With the same 41-run budget, random argv
    // fuzz finds none of turnin's flaws.
    let r = patterns();
    assert_eq!(r.catalog.0, 41);
    assert_eq!(r.catalog.1, 9);
    assert_eq!(r.random.0, 41);
    assert!(r.random.1 < r.catalog.1, "random input must underperform the catalog");
    assert!(!r.catalog_only_rules.is_empty());
}
