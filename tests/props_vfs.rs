//! Property tests: virtual file-system invariants under arbitrary
//! operation sequences.

use epa::sandbox::cred::{Credentials, Gid, Uid};
use epa::sandbox::error::Errno;
use epa::sandbox::fs::Vfs;
use epa::sandbox::mode::{Access, Mode};
use epa::sandbox::path;
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{1,8}").expect("regex")
}

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(name_strategy(), 1..4).prop_map(|parts| format!("/{}", parts.join("/")))
}

/// One random mutation applied to a Vfs.
#[derive(Debug, Clone)]
enum Op {
    PutFile(String, u16),
    MkdirP(String),
    Symlink(String, String),
    Remove(String),
    Chmod(String, u16),
    Chown(String, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (path_strategy(), 0u16..0o7777).prop_map(|(p, m)| Op::PutFile(p, m)),
        path_strategy().prop_map(Op::MkdirP),
        (path_strategy(), path_strategy()).prop_map(|(a, b)| Op::Symlink(a, b)),
        path_strategy().prop_map(Op::Remove),
        (path_strategy(), 0u16..0o7777).prop_map(|(p, m)| Op::Chmod(p, m)),
        (path_strategy(), 0u32..5000).prop_map(|(p, u)| Op::Chown(p, u)),
    ]
}

fn apply(fs: &mut Vfs, op: &Op) {
    match op {
        Op::PutFile(p, m) => {
            let _ = fs.put_file(p, "data", Uid(1), Gid(1), Mode::new(*m));
        }
        Op::MkdirP(p) => {
            let _ = fs.mkdir_p(p, Uid::ROOT, Gid::ROOT, Mode::new(0o755));
        }
        Op::Symlink(a, b) => {
            let _ = fs.god_symlink(a, b);
        }
        Op::Remove(p) => {
            let _ = fs.god_remove(p);
        }
        Op::Chmod(p, m) => {
            let _ = fs.god_chmod(p, Mode::new(*m));
        }
        Op::Chown(p, u) => {
            let _ = fs.god_chown(p, Uid(*u), Gid(*u));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any sequence of mutations, the inode graph stays consistent:
    /// no dangling directory entries, no orphan inodes.
    #[test]
    fn fs_invariants_hold_under_arbitrary_ops(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        let mut fs = Vfs::new();
        for op in &ops {
            apply(&mut fs, op);
        }
        prop_assert!(fs.check_invariants().is_ok(), "{:?}", fs.check_invariants());
    }

    /// Resolution terminates (no infinite symlink walks) and every success
    /// reports an absolute physical path with no `.`/`..` components.
    #[test]
    fn resolution_terminates_and_physical_paths_are_canonical(
        ops in proptest::collection::vec(op_strategy(), 0..30),
        probe in path_strategy(),
    ) {
        let mut fs = Vfs::new();
        for op in &ops {
            apply(&mut fs, op);
        }
        if let Ok(w) = fs.walk(&probe, true, None) {
            prop_assert!(w.physical.starts_with('/'));
            prop_assert!(!path::contains_dotdot(&w.physical));
            prop_assert!(fs.inode(w.id).is_ok());
        }
    }

    /// Permission monotonicity: anything a plain user may do, root may do
    /// (for read/write access checks on existing files).
    #[test]
    fn root_access_dominates_user_access(
        mode in 0u16..0o777,
        owner in 0u32..10,
        asker in 1u32..10,
    ) {
        let m = Mode::new(mode);
        let user = Credentials::user(Uid(asker), Gid(asker));
        let root = Credentials::root();
        for access in [Access::Read, Access::Write] {
            if m.grants(Uid(owner), Gid(owner), &user, access) {
                prop_assert!(m.grants(Uid(owner), Gid(owner), &root, access));
            }
        }
    }

    /// Lexical normalization is idempotent and join respects absolutes.
    #[test]
    fn normalize_idempotent(p in proptest::string::string_regex("(/?[a-z.]{0,6}){0,6}").expect("regex")) {
        let once = path::normalize(&p);
        prop_assert_eq!(path::normalize(&once), once.clone());
        prop_assert_eq!(path::join("/base", &once), if once.starts_with('/') { once.clone() } else { format!("/base/{once}") });
    }

    /// `creat` never errors with EEXIST-style duplication inconsistencies:
    /// after a successful creat the path resolves to a regular file.
    #[test]
    fn creat_postcondition(ops in proptest::collection::vec(op_strategy(), 0..20), target in path_strategy()) {
        let mut fs = Vfs::new();
        for op in &ops {
            apply(&mut fs, op);
        }
        let root = Credentials::root();
        match fs.creat(&target, Mode::new(0o644), &root, 0o22) {
            Ok((w, _)) => {
                let ino = fs.inode(w.id).expect("resolvable");
                prop_assert!(ino.is_file());
                prop_assert!(fs.check_invariants().is_ok());
            }
            Err(e) => {
                // Acceptable failures only.
                prop_assert!(matches!(
                    e.errno,
                    Errno::Eacces | Errno::Enoent | Errno::Enotdir | Errno::Eisdir | Errno::Eloop | Errno::Eexist | Errno::Enametoolong
                ), "{e}");
            }
        }
    }
}
