//! The testing procedure of paper §3.3, as an engine.
//!
//! A [`Campaign`] takes an application, a pristine world, and options, then:
//!
//! 1. runs the application unperturbed and records the execution trace
//!    (steps 1–3: enumerate interaction points and whether they take input);
//! 2. builds the applicable fault list per interaction point from the
//!    catalog (steps 4–5);
//! 3. re-runs the application once per fault from a fresh clone of the
//!    world, injecting the fault before/after the targeted point (steps
//!    6–7) and asking the policy oracle for violations (step 8);
//! 4. reports interaction coverage, fault coverage, and the vulnerability
//!    assessment score (steps 9–10).

use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;

use epa_sandbox::app::Application;
use epa_sandbox::audit::AuditEvent;
use epa_sandbox::cred::Uid;
use epa_sandbox::os::Os;
use epa_sandbox::policy::{InvariantSpec, OracleSet, Verdict};
use epa_sandbox::process::Pid;
use epa_sandbox::syscall::Interceptor;
use epa_sandbox::trace::{SiteId, SiteSummary};

use crate::catalog::{faults_for_site, DirectContext};
use crate::engine::executor::Executor;
use crate::engine::planner::{Claim, FaultKey, ResultCache, RunDigest, Schedule, YieldStats};
use crate::inject::{InjectionHook, InjectionPlan};
use crate::perturb::ConcreteFault;
use crate::report::{CampaignReport, FaultRecord};

/// Everything needed to (re)start the application under test: the pristine
/// world plus the spawn parameters.
#[derive(Debug, Clone)]
pub struct TestSetup {
    /// The pristine world; cloned for every run.
    pub world: Os,
    /// Path of the program file to spawn from (SUID semantics apply); `None`
    /// spawns with the invoker's plain credentials.
    pub program: Option<String>,
    /// Who invokes the program.
    pub invoker: Uid,
    /// Argument vector.
    pub args: Vec<String>,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Initial working directory.
    pub cwd: String,
    /// Declarative custom invariants; each compiles into a detector
    /// registered on every run's [`OracleSet`] alongside the standard set.
    pub invariants: Vec<InvariantSpec>,
}

impl TestSetup {
    /// Builds a setup with the world's scenario invoker, no program file,
    /// empty args/env, no custom invariants, and `/` as the working
    /// directory.
    pub fn new(world: Os) -> Self {
        let invoker = world.scenario.invoker;
        TestSetup {
            world,
            program: None,
            invoker,
            args: Vec::new(),
            env: BTreeMap::new(),
            cwd: "/".to_string(),
            invariants: Vec::new(),
        }
    }

    /// Sets the program file (enabling SUID).
    #[must_use]
    pub fn program(mut self, path: impl Into<String>) -> Self {
        self.program = Some(path.into());
        self
    }

    /// Sets the argument vector.
    #[must_use]
    pub fn args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Sets one environment variable.
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.insert(key.into(), value.into());
        self
    }

    /// Sets the working directory.
    #[must_use]
    pub fn cwd(mut self, dir: impl Into<String>) -> Self {
        self.cwd = dir.into();
        self
    }

    /// Sets the invoking user (defaults to the world's scenario invoker).
    /// System services are spawned by root while the scenario invoker stays
    /// the user on whose behalf the oracle judges outcomes.
    #[must_use]
    pub fn invoker(mut self, uid: Uid) -> Self {
        self.invoker = uid;
        self
    }

    /// Adds a declarative custom invariant to every run's oracle set.
    #[must_use]
    pub fn invariant(mut self, spec: InvariantSpec) -> Self {
        self.invariants.push(spec);
        self
    }

    /// The oracle set a run of this setup evaluates against: the standard
    /// eight detector families plus one detector per declared invariant.
    pub fn oracle(&self) -> OracleSet {
        let mut oracle = OracleSet::standard();
        for spec in &self.invariants {
            oracle.register(spec.detector());
        }
        oracle
    }

    /// A content fingerprint of the frozen setup: the pristine world's
    /// substrates (file system, users, registry, network, scenario) plus
    /// every spawn parameter and declared invariant.
    ///
    /// This is the memoization scope half of the planner's
    /// `(fingerprint, FaultKey)` cache key: two runs can only replay each
    /// other when they start from byte-identical worlds with identical
    /// spawn parameters. The hash is cheap in the engine's terms because a
    /// [`crate::engine::Session`] freezes one pristine world and snapshots
    /// it copy-on-write per run — the frozen state is hashed once per
    /// campaign, never per injected run.
    pub fn fingerprint(&self) -> u64 {
        let mut text = String::new();
        let mut part = |label: &str, json: String| {
            text.push_str(label);
            text.push('=');
            text.push_str(&json);
            text.push('\n');
        };
        let world = &self.world;
        part("fs", serde_json::to_string(&world.fs).expect("vfs serializes"));
        part("users", serde_json::to_string(&world.users).expect("users serialize"));
        part(
            "registry",
            serde_json::to_string(&world.registry).expect("registry serializes"),
        );
        part("net", serde_json::to_string(&world.net).expect("network serializes"));
        part(
            "scenario",
            serde_json::to_string(&world.scenario).expect("scenario serializes"),
        );
        part("procs", world.procs.len().to_string());
        part("created", format!("{:?}", world.created_paths().collect::<Vec<_>>()));
        part("audit", world.audit.len().to_string());
        part("trace", world.trace.len().to_string());
        part("program", format!("{:?}", self.program));
        part("invoker", format!("{:?}", self.invoker));
        part("args", format!("{:?}", self.args));
        part("env", format!("{:?}", self.env));
        part("cwd", self.cwd.clone());
        part(
            "invariants",
            serde_json::to_string(&self.invariants).expect("invariants serialize"),
        );
        crate::engine::planner::fnv1a(text.as_bytes())
    }
}

/// The observable outcome of one run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The world after the run (trace + audit included).
    pub os: Os,
    /// The spawned process, if the spawn succeeded.
    pub pid: Option<Pid>,
    /// Exit status (`None` when the application panicked or never spawned).
    pub exit: Option<i32>,
    /// `Some(panic message)` when the application panicked.
    pub crashed: Option<String>,
    /// Verdicts the oracle pipeline detected, each carrying its evidence
    /// chain (a `Verdict` dereferences to its `Violation`).
    pub violations: Vec<Verdict>,
}

impl RunOutcome {
    /// Whether the application panicked during the run.
    pub fn has_crashed(&self) -> bool {
        self.crashed.is_some()
    }
}

/// Extracts the payload text from a caught panic (`&str` and `String`
/// payloads; anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs the application once against a clone of the setup's world, with an
/// optional injection hook installed.
///
/// The oracle evaluates **incrementally**: the setup's [`OracleSet`] is
/// subscribed to the run's audit log before the application starts, every
/// recorded event streams straight to the detectors, and the verdicts are
/// collected the moment the run ends — no post-hoc re-scan of the log.
pub fn run_once(setup: &TestSetup, app: &dyn Application, hook: Option<Box<dyn Interceptor>>) -> RunOutcome {
    run_once_impl(setup, app, hook, true)
}

/// As [`run_once`], but with the **retired batch oracle**: the run executes
/// unobserved and the completed audit log is re-scanned afterwards.
///
/// The verdicts are identical to the incremental path by construction (the
/// property tests in `tests/props_oracle.rs` pin this); the function exists
/// as the comparison baseline for `BENCH_oracle.json` and for equivalence
/// testing. New code should use [`run_once`].
pub fn run_once_batch_oracle(
    setup: &TestSetup,
    app: &dyn Application,
    hook: Option<Box<dyn Interceptor>>,
) -> RunOutcome {
    run_once_impl(setup, app, hook, false)
}

fn run_once_impl(
    setup: &TestSetup,
    app: &dyn Application,
    hook: Option<Box<dyn Interceptor>>,
    incremental: bool,
) -> RunOutcome {
    let mut os = setup.world.clone();
    if incremental {
        os.audit.attach_oracle(setup.oracle());
    }
    // Collects the verdicts from whichever path is active: detach the
    // subscribed set, or feed the completed log to a fresh one.
    let verdicts = |os: &mut Os| match os.audit.detach_oracle() {
        Some(mut oracle) => oracle.finish(),
        None => setup.oracle().evaluate_log(&os.audit),
    };
    if let Some(h) = hook {
        os.set_interceptor(h);
    }
    let Ok(pid) = os.spawn(
        setup.invoker,
        setup.program.as_deref(),
        setup.args.clone(),
        setup.env.clone(),
        &setup.cwd,
    ) else {
        let violations = verdicts(&mut os);
        return RunOutcome {
            os,
            pid: None,
            exit: None,
            crashed: None,
            violations,
        };
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| app.run(&mut os, pid)));
    let (exit, crashed) = match result {
        Ok(code) => (Some(code), None),
        Err(payload) => (None, Some(panic_text(payload.as_ref()))),
    };
    if let Some(c) = exit {
        os.set_exit(pid, c);
    }
    let violations = verdicts(&mut os);
    RunOutcome {
        os,
        pid: Some(pid),
        exit,
        crashed,
        violations,
    }
}

/// Campaign tuning knobs.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Perturb only these sites (by id); `None` perturbs all.
    pub site_filter: Option<BTreeSet<SiteId>>,
    /// Perturb at most this many sites (in first-execution order).
    pub max_sites: Option<usize>,
    /// Inject at most this many faults per site.
    pub max_faults_per_site: Option<usize>,
    /// Strike at most this many occurrences of each site (paper §3.3
    /// perturbs *each occurrence* of each interaction point; re-accessed
    /// objects — the lpr TOCTTOU class — only misbehave at later hits).
    /// Occurrences past the first replan only the occurrence-sensitive
    /// faults ([`ConcreteFault::occurrence_sensitive`]). The default of 1
    /// preserves the historical first-hit-only plans; use
    /// `usize::MAX` to cover every traced occurrence.
    pub max_occurrences_per_site: usize,
    /// Run injected experiments on worker threads.
    pub parallel: bool,
    /// Worker-thread ceiling for parallel execution. `None` (the default)
    /// sizes the pool to the hardware — or to the `EPA_WORKERS`
    /// environment variable when set (see [`crate::engine::Executor::new`]).
    /// Benches and CI set an explicit count to measure 1/4/8-worker
    /// throughput on arbitrary hardware.
    pub workers: Option<usize>,
    /// Collapse jobs whose canonical [`crate::engine::planner::FaultKey`]s
    /// are equal: only the first executes, the rest replay its outcome with
    /// `cache_hit: true`. On by default — replays are byte-identical by
    /// construction, so every verdict (and every paper number) is
    /// preserved. Turn off to force the exhaustive pre-planner behaviour
    /// (the equivalence baseline the property tests compare against).
    pub dedup: bool,
    /// A shared [`crate::engine::planner::ResultCache`] memoizing
    /// `(setup fingerprint, FaultKey) -> RunDigest` across campaigns and
    /// executions. `None` (the default) keeps memoization plan-local;
    /// [`crate::engine::Suite`] installs one suite-scoped cache across all
    /// of its campaigns.
    pub cache: Option<crate::engine::planner::ResultCache>,
    /// Execute at most this many *runs* (cache replays are free), picking
    /// the next job adaptively by observed per-EAI-category verdict yield
    /// ([`crate::engine::planner::YieldStats`]). `None` — the default, and
    /// what every paper table uses — executes the exhaustive plan in plan
    /// order. Budgeted execution is inherently sequential (each pick feeds
    /// on the previous outcome), so it ignores
    /// [`CampaignOptions::parallel`] within one campaign; a suite still
    /// interleaves budgeted campaigns across its worker pool.
    pub plan_budget: Option<usize>,
    /// Pre-prune the plan with the static analysis layer: jobs the
    /// [`crate::analysis::AppAnalysis`] classifies as
    /// [`crate::analysis::Relevance::ProvablyInert`] are never executed —
    /// their records are synthesized from the clean run and flagged
    /// [`FaultRecord::pruned`], mirroring `cache_hit`. On by default:
    /// pruned records are byte-identical to what the run would have
    /// produced (the corpus differential harness and
    /// `tests/props_analysis.rs` pin this), so every verdict and every
    /// paper number is preserved. Turn off to force the exhaustive
    /// behaviour (the soundness baseline).
    pub static_prune: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            site_filter: None,
            max_sites: None,
            max_faults_per_site: None,
            max_occurrences_per_site: 1,
            parallel: false,
            workers: None,
            dedup: true,
            cache: None,
            plan_budget: None,
            static_prune: true,
        }
    }
}

/// One interaction point with its planned fault list.
#[derive(Debug, Clone)]
pub struct PlannedSite {
    /// The traced site.
    pub summary: SiteSummary,
    /// Whether the options include it in the perturbation set.
    pub included: bool,
    /// How many occurrences of the site the plan strikes (the traced hit
    /// count capped by [`CampaignOptions::max_occurrences_per_site`]).
    pub occurrences: usize,
    /// The applicable faults (already truncated to any per-site limit).
    pub faults: Vec<ConcreteFault>,
}

impl PlannedSite {
    /// The `(site, occurrence, fault)` jobs this site contributes, in
    /// deterministic order: occurrence 0 gets the full fault list, later
    /// occurrences only the occurrence-sensitive faults (re-striking a
    /// semantics-addressed indirect fault would duplicate the first run).
    pub fn jobs(&self) -> Vec<InjectionPlan> {
        let mut out = Vec::new();
        if !self.included {
            return out;
        }
        for occurrence in 0..self.occurrences.max(1) {
            for fault in &self.faults {
                if occurrence > 0 && !fault.occurrence_sensitive() {
                    continue;
                }
                out.push(InjectionPlan {
                    site: self.summary.site.clone(),
                    occurrence,
                    fault: fault.clone(),
                });
            }
        }
        out
    }
}

/// The campaign plan: the clean run plus the per-site fault lists.
#[derive(Debug)]
pub struct CampaignPlan {
    /// The unperturbed run.
    pub clean: RunOutcome,
    /// Every traced site, included or not.
    pub sites: Vec<PlannedSite>,
}

impl CampaignPlan {
    /// Total injection jobs across included sites (occurrence-aware:
    /// occurrences past the first contribute their occurrence-sensitive
    /// faults).
    pub fn total_faults(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.included)
            .map(|s| {
                let sensitive = s.faults.iter().filter(|f| f.occurrence_sensitive()).count();
                s.faults.len() + (s.occurrences.max(1) - 1) * sensitive
            })
            .sum()
    }

    /// The flat list of injections to perform, in plan order.
    pub fn jobs(&self) -> Vec<InjectionPlan> {
        self.sites.iter().flat_map(PlannedSite::jobs).collect()
    }
}

/// The methodology engine.
///
/// This is the original single-campaign driver. New code should go through
/// the [`crate::engine`] facade — [`crate::engine::Session`] freezes one
/// pristine world and runs campaigns from cheap copy-on-write snapshots,
/// and [`crate::engine::Suite`] batches many applications — but the shim is
/// kept (and tested) so existing callers keep reproducing the paper's
/// numbers unchanged.
pub struct Campaign<'a> {
    app: &'a dyn Application,
    setup: &'a TestSetup,
    options: CampaignOptions,
    /// The memoization scope (app identity + setup fingerprint), computed
    /// at most once per campaign — the world hash is cheap, but not free.
    scope: shim_sync::sync::OnceLock<u64>,
    /// The static analysis of this campaign's clean run, built at most once
    /// (by [`Campaign::plan`], or lazily by the scheduler) and only when
    /// [`CampaignOptions::static_prune`] is on.
    analysis: shim_sync::sync::OnceLock<shim_sync::sync::Arc<crate::analysis::AppAnalysis>>,
}

impl<'a> Campaign<'a> {
    /// Builds a campaign with default options.
    #[deprecated(
        since = "0.2.0",
        note = "use `epa_core::engine::Session` (or `Suite` for batches) instead"
    )]
    pub fn new(app: &'a dyn Application, setup: &'a TestSetup) -> Self {
        Campaign {
            app,
            setup,
            options: CampaignOptions::default(),
            scope: shim_sync::sync::OnceLock::new(),
            analysis: shim_sync::sync::OnceLock::new(),
        }
    }

    /// As [`Campaign::new`], without the deprecation: the engine layer
    /// builds campaigns internally.
    pub(crate) fn build(app: &'a dyn Application, setup: &'a TestSetup, options: CampaignOptions) -> Self {
        Campaign {
            app,
            setup,
            options,
            scope: shim_sync::sync::OnceLock::new(),
            analysis: shim_sync::sync::OnceLock::new(),
        }
    }

    /// Replaces the options.
    #[must_use]
    pub fn with_options(mut self, options: CampaignOptions) -> Self {
        self.options = options;
        self
    }

    /// Installs `cache` as the campaign's result cache unless the options
    /// already carry one (the suite-scoped default; an explicit per-session
    /// cache wins).
    pub(crate) fn ensure_cache(&mut self, cache: ResultCache) {
        if self.options.cache.is_none() {
            self.options.cache = Some(cache);
        }
    }

    /// The `(setup fingerprint, application)` memoization scope of this
    /// campaign's runs — see [`TestSetup::fingerprint`].
    pub fn scope(&self) -> u64 {
        *self.scope.get_or_init(|| {
            let text = format!("{}\n{:016x}", self.app.name(), self.setup.fingerprint());
            crate::engine::planner::fnv1a(text.as_bytes())
        })
    }

    /// This campaign's static analysis, when pre-pruning is enabled: built
    /// from a clean run at most once. [`Campaign::plan`] seeds it with the
    /// plan's own clean run; a direct [`Campaign::schedule`] call (no plan)
    /// performs one clean run lazily — clean runs are deterministic, so
    /// both paths build identical analyses.
    pub(crate) fn analysis(&self) -> Option<shim_sync::sync::Arc<crate::analysis::AppAnalysis>> {
        if !self.options.static_prune {
            return None;
        }
        Some(
            self.analysis
                .get_or_init(|| {
                    let clean = run_once(self.setup, self.app, None);
                    shim_sync::sync::Arc::new(crate::analysis::AppAnalysis::from_clean_run(self.setup, &clean))
                })
                .clone(),
        )
    }

    /// Steps 1–5: trace the application and build the fault plan.
    pub fn plan(&self) -> CampaignPlan {
        let clean = run_once(self.setup, self.app, None);
        if self.options.static_prune {
            self.analysis.get_or_init(|| {
                shim_sync::sync::Arc::new(crate::analysis::AppAnalysis::from_clean_run(self.setup, &clean))
            });
        }
        let summaries = clean.os.trace.sites();
        let reaccessed = clean.os.trace.reaccessed_files();
        let mut exec_resolutions: BTreeMap<String, String> = BTreeMap::new();
        for ev in clean.os.audit.events() {
            if let AuditEvent::Exec {
                requested, resolved, ..
            } = ev
            {
                exec_resolutions
                    .entry(requested.clone())
                    .or_insert_with(|| resolved.to_string());
            }
        }
        let ctx = DirectContext {
            scenario: &self.setup.world.scenario,
            reaccessed: &reaccessed,
            exec_resolutions: &exec_resolutions,
            cwd: &self.setup.cwd,
        };
        let mut sites = Vec::new();
        let mut taken = 0usize;
        for summary in summaries {
            let mut included = match &self.options.site_filter {
                Some(filter) => filter.contains(&summary.site),
                None => true,
            };
            if included {
                if let Some(max) = self.options.max_sites {
                    if taken >= max {
                        included = false;
                    }
                }
            }
            let mut faults = faults_for_site(&summary, &ctx);
            if let Some(limit) = self.options.max_faults_per_site {
                faults.truncate(limit);
            }
            if included && !faults.is_empty() {
                taken += 1;
            }
            let occurrences = summary.hits.min(self.options.max_occurrences_per_site).max(1);
            sites.push(PlannedSite {
                summary,
                included,
                occurrences,
                faults,
            });
        }
        CampaignPlan { clean, sites }
    }

    pub(crate) fn run_job(&self, job: &InjectionPlan) -> FaultRecord {
        let (hook, fired) = InjectionHook::new(job.clone());
        let outcome = run_once(self.setup, self.app, Some(Box::new(hook)));
        FaultRecord {
            site: job.site.to_string(),
            occurrence: job.occurrence,
            fault_id: job.fault.id.clone(),
            category: job.fault.category,
            description: job.fault.description.clone(),
            applied: fired.get(),
            exit: outcome.exit,
            crashed: outcome.crashed,
            audit_events: outcome.os.audit.len(),
            cache_hit: false,
            pruned: false,
            violations: outcome.violations,
        }
    }

    /// As [`Campaign::run_job`], but claim-aware: with a result cache
    /// installed, at most one thread — across parallel workers, the suite's
    /// pool, and even simultaneous suites sharing the cache — executes each
    /// `(scope, FaultKey)`; concurrent callers block on the in-flight claim
    /// ([`ResultCache::begin`]) and replay the winner's digest. Without a
    /// cache this is exactly [`Campaign::run_job`].
    pub(crate) fn run_job_cached(&self, job: &InjectionPlan) -> FaultRecord {
        let Some(cache) = self.options.cache.clone() else {
            return self.run_job(job);
        };
        let key = FaultKey::of(job);
        match cache.begin(self.scope(), &key) {
            Claim::Replay(digest) => digest.replay(job),
            Claim::Execute(token) => {
                let record = self.run_job(job);
                token.fulfill(RunDigest::of(&record));
                record
            }
        }
    }

    /// Steps 6–10: execute the plan and report.
    pub fn execute(&self) -> CampaignReport {
        let plan = self.plan();
        self.execute_plan(&plan)
    }

    /// The paper's §3.3 step 9: inject site by site, stopping as soon as
    /// the interaction-coverage criterion is satisfied.
    ///
    /// Returns the report of the incremental campaign; its interaction
    /// coverage is the smallest prefix coverage `>= criterion` (or the full
    /// campaign when the criterion is unreachable).
    pub fn execute_until(&self, min_interaction_coverage: f64) -> CampaignReport {
        let full = self.plan();
        let perturbable: Vec<&PlannedSite> = full
            .sites
            .iter()
            .filter(|s| s.included && !s.faults.is_empty())
            .collect();
        let total = full.sites.iter().filter(|s| !s.faults.is_empty()).count();
        let mut records = Vec::new();
        let mut covered = 0usize;
        // `plan_budget` caps executed runs across the whole incremental
        // campaign, not per site batch: the remaining allowance carries
        // over, decremented by what each batch actually executed.
        let mut budget_left = self.options.plan_budget;
        for site in &perturbable {
            // Each site's batch goes through the planner (dedup + memo +
            // parallel execution), so the incremental §3.3 criterion run
            // honors the planning options too; records stay in plan order
            // within the batch.
            let jobs = site.jobs();
            let batch = self.run_jobs_with(&jobs, budget_left, &mut |_| {});
            if let Some(left) = &mut budget_left {
                *left = left.saturating_sub(batch.iter().filter(|r| !r.cache_hit && !r.pruned).count());
            }
            // Under a budget, a site whose batch produced nothing was not
            // perturbed and must not count toward the coverage criterion.
            if !batch.is_empty() || self.options.plan_budget.is_none() {
                covered += 1;
            }
            records.extend(batch);
            if total > 0 && covered as f64 / total as f64 >= min_interaction_coverage {
                break;
            }
        }
        CampaignReport {
            app: self.app.name().to_string(),
            total_sites: total,
            perturbed_sites: covered,
            clean_violations: full.clean.violations.len(),
            records,
        }
    }

    /// Executes a pre-built plan (lets callers inspect or prune it first).
    pub fn execute_plan(&self, plan: &CampaignPlan) -> CampaignReport {
        self.execute_plan_with(plan, &mut |_| {})
    }

    /// As [`Campaign::execute_plan`], additionally streaming every record to
    /// `on_record` as soon as its run completes (completion order; the
    /// returned report is always in plan order). This is the primitive the
    /// engine's [`crate::engine::Suite`] streaming API builds on.
    pub fn execute_plan_with(&self, plan: &CampaignPlan, on_record: &mut dyn FnMut(&FaultRecord)) -> CampaignReport {
        let jobs = plan.jobs();
        let records = self.run_jobs(&jobs, on_record);
        self.report_from(plan, records)
    }

    /// Runs a flat job list through the planner: canonical-fault dedup,
    /// cache memoization, then execution of the remaining misses — in plan
    /// order (parallel over the executor's shared queue when the options
    /// ask for it), or adaptively when a
    /// [`CampaignOptions::plan_budget`] caps the run count. Replayed
    /// records never occupy a worker slot.
    ///
    /// The returned records are in plan order; budget-dropped jobs are
    /// absent. `on_record` observes every record (executed and replayed) in
    /// completion order.
    pub(crate) fn run_jobs(&self, jobs: &[InjectionPlan], on_record: &mut dyn FnMut(&FaultRecord)) -> Vec<FaultRecord> {
        self.run_jobs_with(jobs, self.options.plan_budget, on_record)
    }

    /// As [`Campaign::run_jobs`], with an explicit execution budget — the
    /// remaining per-campaign allowance when the caller splits one
    /// campaign across several batches ([`Campaign::execute_until`]).
    fn run_jobs_with(
        &self,
        jobs: &[InjectionPlan],
        plan_budget: Option<usize>,
        on_record: &mut dyn FnMut(&FaultRecord),
    ) -> Vec<FaultRecord> {
        let cache = self.options.cache.clone();
        let scope = if cache.is_some() { self.scope() } else { 0 };
        let schedule = self.schedule(jobs);
        let mut slots: Vec<Option<FaultRecord>> = jobs.iter().map(|_| None).collect();

        // Statically pruned canonicals (and their aliases) replay their
        // synthesized clean-run digests inline.
        for (idx, digest) in &schedule.pruned {
            let record = digest.replay_pruned(&jobs[*idx]);
            on_record(&record);
            slots[*idx] = Some(record);
            for &alias in schedule.aliases_of(*idx) {
                let record = digest.replay_pruned(&jobs[alias]);
                on_record(&record);
                slots[alias] = Some(record);
            }
        }

        // Cache-resolved canonicals (and their aliases) replay inline.
        for (idx, digest) in &schedule.resolved {
            let record = digest.replay(&jobs[*idx]);
            on_record(&record);
            slots[*idx] = Some(record);
            for &alias in schedule.aliases_of(*idx) {
                let record = digest.replay(&jobs[alias]);
                on_record(&record);
                slots[alias] = Some(record);
            }
        }

        if let Some(budget) = plan_budget {
            // Budgeted execution: sequential by construction — every pick
            // feeds on the verdict yield of everything observed so far,
            // including the replays above.
            let mut stats = YieldStats::new();
            for record in slots.iter().flatten() {
                stats.observe(record.category, !record.tolerated());
            }
            let mut remaining = schedule.pending.clone();
            let mut executed = 0usize;
            while executed < budget && !remaining.is_empty() {
                let pos = stats.pick(&remaining, jobs);
                let idx = remaining.remove(pos);
                let record = self.run_job_cached(&jobs[idx]);
                // A claim replay (another thread, or a duplicate key in an
                // undeduped plan, already executed this run) is free: only
                // actual executions spend the budget.
                if !record.cache_hit {
                    executed += 1;
                }
                stats.observe(record.category, !record.tolerated());
                on_record(&record);
                self.finish_canonical(
                    &schedule,
                    jobs,
                    idx,
                    record,
                    scope,
                    cache.as_ref(),
                    &mut slots,
                    on_record,
                );
            }
        } else if self.options.parallel && schedule.pending.len() > 1 {
            // One shared queue over bounded workers (no static `i % workers`
            // partitioning): idle workers steal the next unclaimed job, and
            // the executor reassembles plan order from the job indices.
            let pending_jobs: Vec<&InjectionPlan> = schedule.pending.iter().map(|&i| &jobs[i]).collect();
            let executed =
                self.executor()
                    .run_indexed(&pending_jobs, |_, job| self.run_job_cached(job), &mut |_, r| {
                        on_record(r);
                    });
            for (k, record) in executed.into_iter().enumerate() {
                let idx = schedule.pending[k];
                self.finish_canonical(
                    &schedule,
                    jobs,
                    idx,
                    record,
                    scope,
                    cache.as_ref(),
                    &mut slots,
                    on_record,
                );
            }
        } else {
            for &idx in &schedule.pending {
                let record = self.run_job_cached(&jobs[idx]);
                on_record(&record);
                self.finish_canonical(
                    &schedule,
                    jobs,
                    idx,
                    record,
                    scope,
                    cache.as_ref(),
                    &mut slots,
                    on_record,
                );
            }
        }
        slots.into_iter().flatten().collect()
    }

    /// Canonicalizes a flat job list against this campaign's scope, cache,
    /// and dedup setting (the planner's entry point; the suite's pooled
    /// queue drives the schedule itself so cache replays never occupy a
    /// worker slot).
    pub(crate) fn schedule(&self, jobs: &[InjectionPlan]) -> Schedule {
        let scope = if self.options.cache.is_some() { self.scope() } else { 0 };
        let analysis = self.analysis();
        let prune = analysis
            .as_ref()
            .map(|a| move |job: &InjectionPlan| a.pruned_digest(job));
        let prune_ref: Option<crate::engine::planner::PruneFn<'_>> = prune
            .as_ref()
            .map(|f| f as &dyn Fn(&InjectionPlan) -> Option<RunDigest>);
        Schedule::build(jobs, scope, self.options.cache.as_ref(), self.options.dedup, prune_ref)
    }

    /// Memoizes one executed run's digest under this campaign's scope.
    pub(crate) fn memoize(&self, key: &crate::engine::planner::FaultKey, digest: RunDigest) {
        if let Some(cache) = &self.options.cache {
            cache.insert(self.scope(), key, digest);
        }
    }

    /// The configured per-campaign execution budget, if any.
    pub(crate) fn plan_budget(&self) -> Option<usize> {
        self.options.plan_budget
    }

    /// Books one executed canonical record: memoizes its digest, replays
    /// its aliases, and files everything into the plan-order slots.
    #[allow(clippy::too_many_arguments)]
    fn finish_canonical(
        &self,
        schedule: &Schedule,
        jobs: &[InjectionPlan],
        idx: usize,
        record: FaultRecord,
        scope: u64,
        cache: Option<&ResultCache>,
        slots: &mut [Option<FaultRecord>],
        on_record: &mut dyn FnMut(&FaultRecord),
    ) {
        let aliases = schedule.aliases_of(idx);
        if cache.is_some() || !aliases.is_empty() {
            let digest = RunDigest::of(&record);
            if let Some(c) = cache {
                c.insert(scope, schedule.key(idx), digest.clone());
            }
            for &alias in aliases {
                let replay = digest.replay(&jobs[alias]);
                on_record(&replay);
                slots[alias] = Some(replay);
            }
        }
        slots[idx] = Some(record);
    }

    /// A hardware-bounded pool for this campaign's injected runs, honoring
    /// an explicit [`CampaignOptions::workers`] override when set.
    fn executor(&self) -> Executor {
        match self.options.workers {
            Some(w) => Executor::with_workers(w),
            None => Executor::new(),
        }
    }

    /// Folds executed records into the campaign report (shared by the
    /// in-process paths above and the suite-wide pooled executor, which
    /// runs the jobs itself and only needs the bookkeeping).
    pub(crate) fn report_from(&self, plan: &CampaignPlan, records: Vec<FaultRecord>) -> CampaignReport {
        // Interaction points, in the paper's sense, are the places where the
        // catalog has something to perturb — pure-output sites (prints) have
        // no applicable faults and do not count against coverage.
        let perturbable = plan.sites.iter().filter(|s| !s.faults.is_empty()).count();
        let perturbed_sites = if self.options.plan_budget.is_some() {
            // A budget may drop a planned site entirely; coverage counts
            // only sites that actually received a (possibly replayed) run.
            let touched: BTreeSet<&str> = records.iter().map(|r| r.site.as_str()).collect();
            plan.sites
                .iter()
                .filter(|s| s.included && !s.faults.is_empty() && touched.contains(s.summary.site.0.as_str()))
                .count()
        } else {
            plan.sites.iter().filter(|s| s.included && !s.faults.is_empty()).count()
        };
        CampaignReport {
            app: self.app.name().to_string(),
            total_sites: perturbable,
            perturbed_sites,
            clean_violations: plan.clean.violations.len(),
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `Campaign::new` shim is exercised deliberately: it must
    // keep reproducing the paper's numbers (see also `tests/case_lpr.rs`).
    #![allow(deprecated)]

    use super::*;
    use epa_sandbox::cred::Gid;
    use epa_sandbox::mode::Mode;
    use epa_sandbox::trace::InputSemantic;

    /// A tiny lpr-like program: create a spool file, write the job to it.
    struct MiniLpr;
    impl Application for MiniLpr {
        fn name(&self) -> &'static str {
            "mini-lpr"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let Ok(job) = os.sys_arg(pid, "lpr:arg", 0, InputSemantic::UserFileName) else {
                return 2;
            };
            // Vulnerable: creat without O_EXCL, like the BSD lpr of §3.4.
            if os
                .sys_write_file(pid, "lpr:create", "/var/spool/lpd/job", job, 0o660)
                .is_err()
            {
                let _ = os.sys_print(pid, "lpr:err", "lpr: cannot create spool file\n");
                return 1;
            }
            0
        }
    }

    fn setup() -> TestSetup {
        let mut os = Os::new();
        os.users.add("root", Uid::ROOT, Gid::ROOT, "/root");
        os.users
            .add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
        os.users
            .add("evil", os.scenario.attacker, os.scenario.attacker_gid, "/home/evil");
        os.fs
            .mkdir_p("/var/spool/lpd", Uid::ROOT, Gid::ROOT, Mode::new(0o755))
            .unwrap();
        os.fs
            .put_file("/etc/passwd", "root:0:0:", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        os.fs
            .put_file("/etc/shadow", "root:HASH", Uid::ROOT, Gid::ROOT, Mode::new(0o600))
            .unwrap();
        os.fs
            .put_file("/usr/bin/lpr", "", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))
            .unwrap();
        crate::perturb::tag_standard_targets(&mut os);
        TestSetup::new(os).program("/usr/bin/lpr").args(["report.txt"])
    }

    #[test]
    fn clean_run_is_violation_free() {
        let s = setup();
        let out = run_once(&s, &MiniLpr, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.os.trace.sites().len(), 2);
    }

    #[test]
    fn plan_enumerates_sites_and_faults() {
        let s = setup();
        let c = Campaign::new(&MiniLpr, &s);
        let plan = c.plan();
        assert_eq!(plan.sites.len(), 2);
        // Site 1 (arg): 5 user-file-name indirect faults.
        assert_eq!(plan.sites[0].faults.len(), 5);
        // Site 2 (create): 4 direct file faults, as in §3.4.
        assert_eq!(plan.sites[1].faults.len(), 4);
        assert_eq!(plan.total_faults(), 9);
    }

    #[test]
    fn execute_detects_the_lpr_vulnerabilities() {
        let s = setup();
        let report = Campaign::new(&MiniLpr, &s).execute();
        assert_eq!(report.clean_violations, 0);
        assert_eq!(report.injected(), 9);
        // The four create-site perturbations all defeat the naive creat.
        let create_violations: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.site == "lpr:create" && !r.tolerated())
            .map(|r| r.fault_id.clone())
            .collect();
        assert_eq!(create_violations.len(), 4, "{create_violations:?}");
        assert_eq!(report.perturbed_sites, 2);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let s = setup();
        let seq = Campaign::new(&MiniLpr, &s).execute();
        let par = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                parallel: true,
                ..Default::default()
            })
            .execute();
        assert_eq!(seq.injected(), par.injected());
        assert_eq!(seq.violated(), par.violated());
        let seq_ids: Vec<_> = seq.records.iter().map(|r| &r.fault_id).collect();
        let par_ids: Vec<_> = par.records.iter().map(|r| &r.fault_id).collect();
        assert_eq!(seq_ids, par_ids, "records must come back in plan order");
    }

    #[test]
    fn options_limit_sites_and_faults() {
        let s = setup();
        let report = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                max_sites: Some(1),
                max_faults_per_site: Some(2),
                ..Default::default()
            })
            .execute();
        assert_eq!(report.perturbed_sites, 1);
        assert_eq!(report.injected(), 2);
        assert!(report.interaction_coverage().value_or(1.0) < 1.0);
    }

    #[test]
    fn site_filter_selects_specific_points() {
        let s = setup();
        let mut filter = BTreeSet::new();
        filter.insert(SiteId::new("lpr:create"));
        let report = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                site_filter: Some(filter),
                ..Default::default()
            })
            .execute();
        assert!(report.records.iter().all(|r| r.site == "lpr:create"));
        assert_eq!(report.injected(), 4);
    }

    #[test]
    fn execute_until_honors_parallel_and_matches_sequential() {
        let s = setup();
        for criterion in [0.5, 1.0] {
            let seq = Campaign::new(&MiniLpr, &s).execute_until(criterion);
            let par = Campaign::new(&MiniLpr, &s)
                .with_options(CampaignOptions {
                    parallel: true,
                    ..Default::default()
                })
                .execute_until(criterion);
            assert_eq!(seq, par, "criterion {criterion}: records must match in plan order");
        }
    }

    #[test]
    fn occurrence_cap_expands_plans_with_occurrence_sensitive_faults() {
        let s = setup();
        let base = Campaign::new(&MiniLpr, &s).plan();
        let expanded = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                max_occurrences_per_site: usize::MAX,
                ..Default::default()
            })
            .plan();
        // MiniLpr hits each site once, so even an uncapped plan matches the
        // default first-hit plan: occurrence awareness adds jobs only when
        // the trace shows re-execution.
        assert_eq!(base.total_faults(), expanded.total_faults());
        assert!(expanded.sites.iter().all(|site| site.occurrences == 1));
        assert_eq!(base.jobs(), expanded.jobs());
    }

    #[test]
    fn execute_until_stops_at_the_criterion() {
        let s = setup();
        // MiniLpr has two perturbable sites; 0.5 coverage stops after one.
        let half = Campaign::new(&MiniLpr, &s).execute_until(0.5);
        assert_eq!(half.perturbed_sites, 1);
        assert_eq!(half.interaction_coverage().fraction(), Some(0.5));
        assert!(half.injected() < 9);
        // 1.0 coverage runs everything.
        let full = Campaign::new(&MiniLpr, &s).execute_until(1.0);
        assert_eq!(full.perturbed_sites, 2);
        assert_eq!(full.injected(), 9);
        // An unreachable criterion also runs everything (and reports < 1.0
        // only if sites were excluded, which they are not here).
        let over = Campaign::new(&MiniLpr, &s).execute_until(2.0);
        assert_eq!(over.perturbed_sites, 2);
    }

    struct Panicker;
    impl Application for Panicker {
        fn name(&self) -> &'static str {
            "panicker"
        }
        fn run(&self, _os: &mut Os, _pid: Pid) -> i32 {
            panic!("deliberate crash for harness robustness");
        }
    }

    #[test]
    fn harness_survives_a_panicking_application_and_keeps_the_payload() {
        let s = setup();
        let out = run_once(&s, &Panicker, None);
        assert!(out.has_crashed());
        assert_eq!(out.crashed.as_deref(), Some("deliberate crash for harness robustness"));
        assert_eq!(out.exit, None);
    }

    /// Strips the planner's replay flag so replayed reports compare equal
    /// to executed ones field-for-field.
    fn without_cache_flags(mut report: CampaignReport) -> CampaignReport {
        for r in &mut report.records {
            r.cache_hit = false;
        }
        report
    }

    #[test]
    fn memoized_rerun_replays_every_record_byte_identically() {
        let s = setup();
        let cache = crate::engine::planner::ResultCache::new();
        let options = CampaignOptions {
            cache: Some(cache.clone()),
            ..Default::default()
        };
        let first = Campaign::new(&MiniLpr, &s).with_options(options.clone()).execute();
        assert_eq!(first.cache_hits(), 0, "a cold cache replays nothing");
        let second = Campaign::new(&MiniLpr, &s).with_options(options).execute();
        assert_eq!(
            second.cache_hits(),
            second.injected() - second.pruned(),
            "a warm cache replays every executed run"
        );
        assert_eq!(second.runs_executed(), 0);
        assert_eq!(without_cache_flags(second), without_cache_flags(first.clone()));
        // And the memoized report still matches the exhaustive baseline.
        let exhaustive = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                dedup: false,
                ..Default::default()
            })
            .execute();
        assert_eq!(without_cache_flags(first), exhaustive);
    }

    #[test]
    fn cache_does_not_leak_across_applications() {
        let s = setup();
        let cache = crate::engine::planner::ResultCache::new();
        let options = CampaignOptions {
            cache: Some(cache.clone()),
            ..Default::default()
        };
        let _ = Campaign::new(&MiniLpr, &s).with_options(options.clone()).execute();
        // A different application over the same world must not replay the
        // MiniLpr outcomes: its scope differs.
        struct OtherLpr;
        impl Application for OtherLpr {
            fn name(&self) -> &'static str {
                "other-lpr"
            }
            fn run(&self, os: &mut Os, pid: Pid) -> i32 {
                MiniLpr.run(os, pid)
            }
        }
        let other = Campaign::new(&OtherLpr, &s).with_options(options).execute();
        assert_eq!(other.cache_hits(), 0);
        assert_eq!(other.runs_executed(), other.injected() - other.pruned());
    }

    #[test]
    fn budgeted_campaign_executes_at_most_the_budget() {
        let s = setup();
        let full = Campaign::new(&MiniLpr, &s).execute();
        let budgeted = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                plan_budget: Some(3),
                ..Default::default()
            })
            .execute();
        assert_eq!(budgeted.runs_executed(), 3);
        assert!(budgeted.injected() <= full.injected());
        // Every budgeted record matches its exhaustive twin exactly.
        for record in &budgeted.records {
            let twin = full
                .records
                .iter()
                .find(|r| r.fault_id == record.fault_id && r.site == record.site && r.occurrence == record.occurrence)
                .expect("budgeted records are a subset of the exhaustive plan");
            assert_eq!(twin, record);
        }
        // A budget at least as large as the plan reproduces it exactly.
        let generous = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                plan_budget: Some(full.injected()),
                ..Default::default()
            })
            .execute();
        assert_eq!(generous.injected(), full.injected());
        assert_eq!(generous.violated(), full.violated());
    }

    #[test]
    fn execute_until_budget_caps_the_whole_campaign_not_each_batch() {
        let s = setup();
        // MiniLpr's full incremental campaign is 9 runs over 2 sites; a
        // budget of 3 must cap the *campaign*, not allow 3 per site.
        let budgeted = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                plan_budget: Some(3),
                ..Default::default()
            })
            .execute_until(1.0);
        assert_eq!(budgeted.runs_executed(), 3);
        // A zero budget executes nothing and must not claim coverage
        // (pruning off: a synthesized inert record would count as injected).
        let none = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                plan_budget: Some(0),
                static_prune: false,
                ..Default::default()
            })
            .execute_until(1.0);
        assert_eq!(none.injected(), 0);
        assert_eq!(none.perturbed_sites, 0);
    }

    #[test]
    fn scope_is_stable_and_world_sensitive() {
        let s = setup();
        let a = Campaign::new(&MiniLpr, &s).scope();
        let b = Campaign::new(&MiniLpr, &s).scope();
        assert_eq!(a, b, "same app, same frozen world, same scope");
        let mut s2 = setup();
        s2.world
            .fs
            .put_file("/etc/extra", "x", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        assert_ne!(
            Campaign::new(&MiniLpr, &s2).scope(),
            a,
            "a changed world changes the scope"
        );
    }
}
