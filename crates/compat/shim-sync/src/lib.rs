//! # shim-sync — the engine's synchronization facade
//!
//! Every lock, condvar, atomic, channel, and thread the `epa` engine uses
//! goes through this crate instead of `std::sync`/`std::thread` directly
//! (a CI lint enforces it). The facade has two personalities:
//!
//! * **Normal builds** (no features): pure re-exports of `std`. Zero
//!   wrappers, zero overhead — the tier-1 build is byte-for-byte the std
//!   concurrency stack.
//! * **`model-check` builds**: the same API names resolve to model types
//!   that route every synchronization operation through the cooperative
//!   scheduler in [`model`]. Inside a [`model::check`] execution exactly
//!   one thread runs at a time and every operation is a scheduling
//!   decision, which lets the checker:
//!
//!   - exhaustively enumerate interleavings (bounded-preemption DFS, in
//!     the CHESS tradition) or sample them (seeded random walk);
//!   - maintain vector clocks and report unsynchronized shared accesses
//!     (via [`cell::RaceCell`]) as happens-before races;
//!   - detect deadlocks, lost condvar wakeups (all live threads parked
//!     on condvars), lock-order cycles, and livelocks (step bound).
//!
//!   Outside an active execution the model types forward to their inner
//!   std primitives, so ordinary tests still pass when the feature is
//!   enabled workspace-wide.
//!
//! The crate lives under `crates/compat` with the other offline stand-ins
//! (see `crates/compat/README.md`): no crates.io dependencies, excluded
//! from the workspace, consumed as a path dependency.
//!
//! ## Model limitations (documented, by design)
//!
//! * Exploration is exhaustive *within the configured preemption bound*
//!   (unbounded forced switches — blocking and exit — are always fully
//!   explored; voluntary preemptions are budgeted). Empirically small
//!   bounds find almost all concurrency bugs; `Report::complete` says
//!   whether the bounded space was fully enumerated.
//! * Threads inside an execution must be joined before the checked
//!   closure returns (scopes do this automatically, as does `std`).
//! * `notify_one` wakes the longest-waiting thread deterministically;
//!   the engine only uses `notify_all`, which wakes everyone.

pub mod cell;
#[cfg(feature = "model-check")]
pub mod model;
pub mod sync;
pub mod thread;
