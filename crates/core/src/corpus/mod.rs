//! Property-based scenario corpus: synthesized worlds, differential
//! execution-path testing, and corpus-level adequacy reporting.
//!
//! The corpus layer closes the loop the paper leaves implicit: if the
//! perturbation engine is itself the measurement instrument, its many
//! execution paths (sequential campaigns, the pooled executor, the
//! dedup/memoizing/budgeted planner, incremental vs. batch oracle) must all
//! report the *same* verdicts. This module synthesizes hundreds of valid
//! [`WorldSpec`] worlds with scripted behaviors ([`generate`]), runs each
//! through every path and compares verdict sets byte-for-byte
//! ([`harness`]), shrinks any divergence or panic to a minimal world diff
//! ([`mod@shrink`]), and rolls the whole corpus into an adequacy dashboard
//! ([`report`]).
//!
//! Everything is deterministic from a single `u64` seed: per-scenario RNG
//! streams are derived by index, and each scenario's seed is recorded in
//! the report so a CI failure replays exactly.
//!
//! [`WorldSpec`]: crate::engine::spec::WorldSpec

pub mod behavior;
pub mod generate;
pub mod harness;
pub mod report;
pub mod shrink;

pub use behavior::{BehaviorScript, BehaviorStep};
pub use generate::{synthesize, synthesize_one, CorpusConfig, DEFAULT_CORPUS_SEED};
pub use harness::{differential_check, run_corpus, Divergence, PathOutcome, ScenarioOutcome};
pub use report::{CorpusReport, ScenarioAdequacy};
pub use shrink::{shrink, ShrinkResult};

use serde::{Deserialize, Serialize};

use crate::engine::planner::fnv1a;
use crate::engine::spec::WorldSpec;

/// One synthesized test scenario: a world plus the scripted behavior that
/// exercises it, tagged with the RNG seed that produced both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Stable corpus-wide identifier (`gen-<corpus seed>-<index>`).
    pub id: String,
    /// The derived per-scenario seed (printed on failure for exact replay).
    pub seed: u64,
    /// The synthesized world.
    pub spec: WorldSpec,
    /// The synthesized application behavior.
    pub script: BehaviorScript,
}

impl Scenario {
    /// Content fingerprint over the serialized world *and* script; stable
    /// across re-synthesis from the same seed.
    pub fn fingerprint(&self) -> u64 {
        let spec = serde_json::to_string(&self.spec).expect("world specs serialize");
        let script = serde_json::to_string(&self.script).expect("behavior scripts serialize");
        fnv1a(format!("{spec}\n{script}").as_bytes())
    }
}
