//! Suites: many `(application, world)` pairs executed as one batch.
//!
//! A [`Suite`] registers applications with their [`WorldSpec`]s (or
//! pre-built [`Session`]s) and executes every campaign in one call. All
//! planning and injected runs across every registered application flow
//! through **one suite-wide [`Executor`] queue** (worker count bounded by
//! the hardware — no per-application thread fan-out, no oversubscription).
//! Results stream out as [`SuiteEvent`]s the moment they are produced —
//! `AppStarted` markers first, per-fault records as they complete, one
//! finished report per application after — and aggregate into a
//! [`SuiteReport`] with cross-application coverage rollups, following the
//! suite-level adequacy view of Dass & Siami Namin ("Vulnerability Coverage
//! as an Adequacy Testing Criterion"): the unit of adequacy is the whole
//! scenario suite, not a single program.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use epa_sandbox::app::Application;

use crate::campaign::{Campaign, CampaignPlan};
use crate::coverage::{AdequacyPoint, Ratio};
use crate::engine::executor::Executor;
use crate::engine::session::Session;
use crate::engine::spec::{SpecError, WorldSpec};
use crate::inject::InjectionPlan;
use crate::report::{CampaignReport, FaultRecord};

/// An application paired with its frozen session.
struct SuiteEntry {
    app: Arc<dyn Application + Send + Sync>,
    session: Session,
}

/// One streamed suite result.
///
/// `#[non_exhaustive]`: the event stream grows with the engine (as
/// `AppStarted` did); downstream matches need a wildcard arm so new
/// variants are non-breaking.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SuiteEvent {
    /// One application's campaign entered the suite-wide queue (emitted
    /// before any of its records, from both the sequential and the pooled
    /// paths, so streaming consumers can render per-app progress).
    AppStarted {
        /// The application under test.
        app: String,
    },
    /// One injected run finished (streamed in completion order).
    Record {
        /// The application under test.
        app: String,
        /// The fault's outcome.
        record: FaultRecord,
    },
    /// One application's whole campaign finished.
    AppFinished {
        /// The application under test.
        app: String,
        /// Its full report.
        report: CampaignReport,
    },
}

/// A batch of `(application, world)` campaigns executed together.
#[derive(Default)]
pub struct Suite {
    entries: Vec<SuiteEntry>,
    sequential: bool,
}

impl Suite {
    /// An empty suite.
    pub fn new() -> Suite {
        Suite::default()
    }

    /// Registers an application with a declarative world.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] from materializing the spec.
    pub fn register(
        &mut self,
        app: impl Application + Send + 'static,
        spec: &WorldSpec,
    ) -> Result<&mut Suite, SpecError> {
        let session = Session::new(spec)?;
        Ok(self.register_session(app, session))
    }

    /// Registers an application with a pre-built session.
    pub fn register_session(&mut self, app: impl Application + Send + 'static, session: Session) -> &mut Suite {
        self.entries.push(SuiteEntry {
            app: Arc::new(app),
            session,
        });
        self
    }

    /// Number of registered campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered application names, in registration order.
    pub fn apps(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.app.name()).collect()
    }

    /// Runs the campaigns one at a time on the calling thread instead of
    /// fanning out (deterministic event order; useful for debugging).
    #[must_use]
    pub fn sequential(mut self) -> Suite {
        self.sequential = true;
        self
    }

    /// Executes every registered campaign, discarding the event stream.
    pub fn execute(&self) -> SuiteReport {
        self.execute_with(&mut |_| {})
    }

    /// Executes every registered campaign, streaming each [`SuiteEvent`] to
    /// `on_event` as it is produced. Every campaign's planning and injected
    /// runs share **one suite-wide [`Executor`] queue** bounded by
    /// `available_parallelism` workers (unless [`Suite::sequential`], which
    /// runs everything inline on the calling thread); the returned report
    /// is always in registration order and byte-identical between the two
    /// paths.
    pub fn execute_with(&self, on_event: &mut dyn FnMut(SuiteEvent)) -> SuiteReport {
        if self.sequential {
            let mut reports = Vec::with_capacity(self.entries.len());
            for entry in &self.entries {
                let name = entry.app.name().to_string();
                on_event(SuiteEvent::AppStarted { app: name.clone() });
                let report = entry.session.execute_streaming(entry.app.as_ref(), &mut |r| {
                    on_event(SuiteEvent::Record {
                        app: name.clone(),
                        record: r.clone(),
                    });
                });
                on_event(SuiteEvent::AppFinished {
                    app: name,
                    report: report.clone(),
                });
                reports.push(report);
            }
            return SuiteReport { reports };
        }

        // The pooled path: one shared queue for the whole suite. Each
        // application contributes a planning job; completing it fans its
        // `(site, occurrence, fault)` injection jobs back onto the same
        // queue, so idle workers steal across application boundaries and
        // the slowest campaign no longer pins a whole thread.
        let campaigns: Vec<Campaign<'_>> = self
            .entries
            .iter()
            .map(|e| e.session.campaign(e.app.as_ref() as &dyn Application))
            .collect();
        for entry in &self.entries {
            on_event(SuiteEvent::AppStarted {
                app: entry.app.name().to_string(),
            });
        }
        let mut slots: Vec<AppSlot> = (0..self.entries.len()).map(|_| AppSlot::default()).collect();
        let seed: Vec<SuiteJob> = (0..self.entries.len()).map(SuiteJob::Plan).collect();
        Executor::new().run_expanding(
            seed,
            |job| match job {
                SuiteJob::Plan(app) => SuiteDone::Planned {
                    app,
                    plan: Box::new(campaigns[app].plan()),
                },
                SuiteJob::Inject { app, idx, plan } => SuiteDone::Ran {
                    app,
                    idx,
                    record: campaigns[app].run_job(&plan),
                },
            },
            &mut |done| match done {
                SuiteDone::Planned { app, plan } => {
                    let jobs = plan.jobs();
                    let slot = &mut slots[app];
                    slot.records = (0..jobs.len()).map(|_| None).collect();
                    slot.pending = jobs.len();
                    slot.plan = Some(plan);
                    if jobs.is_empty() {
                        finish_app(&campaigns[app], self.entries[app].app.name(), slot, on_event);
                    }
                    jobs.into_iter()
                        .enumerate()
                        .map(|(idx, plan)| SuiteJob::Inject { app, idx, plan })
                        .collect()
                }
                SuiteDone::Ran { app, idx, record } => {
                    on_event(SuiteEvent::Record {
                        app: self.entries[app].app.name().to_string(),
                        record: record.clone(),
                    });
                    let slot = &mut slots[app];
                    slot.records[idx] = Some(record);
                    slot.pending -= 1;
                    if slot.pending == 0 {
                        finish_app(&campaigns[app], self.entries[app].app.name(), slot, on_event);
                    }
                    Vec::new()
                }
            },
        );
        SuiteReport {
            reports: slots
                .into_iter()
                .map(|s| s.report.expect("every campaign completes"))
                .collect(),
        }
    }
}

/// One unit of suite work on the shared queue.
enum SuiteJob {
    /// Trace application `app` and build its fault plan.
    Plan(usize),
    /// Run injection job `idx` of application `app`'s plan.
    Inject {
        app: usize,
        idx: usize,
        plan: InjectionPlan,
    },
}

/// A completed unit of suite work, back on the calling thread.
enum SuiteDone {
    Planned {
        app: usize,
        plan: Box<CampaignPlan>,
    },
    Ran {
        app: usize,
        idx: usize,
        record: FaultRecord,
    },
}

/// Per-application assembly state while the pooled suite runs.
#[derive(Default)]
struct AppSlot {
    plan: Option<Box<CampaignPlan>>,
    records: Vec<Option<FaultRecord>>,
    pending: usize,
    report: Option<CampaignReport>,
}

/// Folds a finished application's records (already in plan order by index)
/// into its report and emits `AppFinished`.
fn finish_app(campaign: &Campaign<'_>, name: &str, slot: &mut AppSlot, on_event: &mut dyn FnMut(SuiteEvent)) {
    let plan = slot.plan.take().expect("plan arrives before its records");
    let records: Vec<FaultRecord> = slot
        .records
        .drain(..)
        .map(|r| r.expect("all records complete before the app finishes"))
        .collect();
    let report = campaign.report_from(&plan, records);
    on_event(SuiteEvent::AppFinished {
        app: name.to_string(),
        report: report.clone(),
    });
    slot.report = Some(report);
}

/// The aggregated outcome of a suite run: per-application reports in
/// registration order plus cross-application rollups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// One campaign report per registered application.
    pub reports: Vec<CampaignReport>,
}

impl SuiteReport {
    /// Looks up one application's report by name.
    pub fn get(&self, app: &str) -> Option<&CampaignReport> {
        self.reports.iter().find(|r| r.app == app)
    }

    /// Total faults injected across the suite.
    pub fn total_injected(&self) -> usize {
        self.reports.iter().map(CampaignReport::injected).sum()
    }

    /// Total violating runs across the suite.
    pub fn total_violated(&self) -> usize {
        self.reports.iter().map(CampaignReport::violated).sum()
    }

    /// Applications whose campaign surfaced at least one violation.
    pub fn vulnerable_apps(&self) -> Vec<&str> {
        self.reports
            .iter()
            .filter(|r| r.violated() > 0)
            .map(|r| r.app.as_str())
            .collect()
    }

    /// Suite-level fault coverage: tolerated / injected over every campaign.
    pub fn fault_coverage(&self) -> Ratio {
        let injected = self.total_injected();
        Ratio::new(injected - self.total_violated(), injected)
    }

    /// Suite-level interaction coverage: perturbed / perturbable sites over
    /// every campaign.
    pub fn interaction_coverage(&self) -> Ratio {
        Ratio::new(
            self.reports.iter().map(|r| r.perturbed_sites).sum(),
            self.reports.iter().map(|r| r.total_sites).sum(),
        )
    }

    /// The suite's aggregate adequacy point (cross-application rollup of the
    /// paper's Figure 2 metric).
    pub fn adequacy(&self) -> AdequacyPoint {
        AdequacyPoint::new(self.interaction_coverage().value(), self.fault_coverage().value())
    }

    /// Per-category `(injected, violated)` counts rolled up across every
    /// campaign.
    pub fn by_category(&self) -> BTreeMap<String, (usize, usize)> {
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for report in &self.reports {
            for (category, (injected, violated)) in report.by_category() {
                let e = out.entry(category).or_insert((0, 0));
                e.0 += injected;
                e.1 += violated;
            }
        }
        out
    }

    /// A human-readable multi-line summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "suite: {} applications   injected: {}   violations: {}",
            self.reports.len(),
            self.total_injected(),
            self.total_violated()
        );
        let _ = writeln!(
            s,
            "  interaction coverage: {}   fault coverage: {}",
            self.interaction_coverage(),
            self.fault_coverage()
        );
        let _ = writeln!(
            s,
            "  {:<16} {:>8} {:>10} {:>7}   coverage (interaction, fault)",
            "app", "injected", "violations", "score"
        );
        for r in &self.reports {
            let _ = writeln!(
                s,
                "  {:<16} {:>8} {:>10} {:>7.3}   ({}, {})",
                r.app,
                r.injected(),
                r.violated(),
                r.vulnerability_score(),
                r.interaction_coverage(),
                r.fault_coverage()
            );
        }
        let _ = writeln!(s, "  per-category rollup:");
        for (category, (injected, violated)) in self.by_category() {
            let _ = writeln!(s, "    {category:<28} {injected:>4} injected  {violated:>3} violations");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EaiCategory, IndirectKind};

    fn record(violated: bool) -> FaultRecord {
        FaultRecord {
            site: "s".into(),
            occurrence: 0,
            fault_id: "f".into(),
            category: EaiCategory::Indirect(IndirectKind::UserInput),
            description: String::new(),
            applied: true,
            exit: Some(0),
            crashed: None,
            audit_events: 1,
            violations: if violated {
                vec![epa_sandbox::policy::Verdict::from_violation(
                    epa_sandbox::policy::Violation::new(
                        epa_sandbox::policy::ViolationKind::Disclosure,
                        "R2",
                        "leak",
                        0,
                    ),
                )]
            } else {
                Vec::new()
            },
        }
    }

    fn report(app: &str, records: Vec<FaultRecord>) -> CampaignReport {
        CampaignReport {
            app: app.into(),
            total_sites: 4,
            perturbed_sites: 2,
            clean_violations: 0,
            records,
        }
    }

    #[test]
    fn rollups_aggregate_across_reports() {
        let suite = SuiteReport {
            reports: vec![
                report("a", vec![record(true), record(false)]),
                report("b", vec![record(false), record(false)]),
            ],
        };
        assert_eq!(suite.total_injected(), 4);
        assert_eq!(suite.total_violated(), 1);
        assert_eq!(suite.vulnerable_apps(), vec!["a"]);
        assert_eq!(suite.fault_coverage().value(), 0.75);
        assert_eq!(suite.interaction_coverage().value(), 0.5);
        let by_cat = suite.by_category();
        assert_eq!(by_cat.len(), 1);
        assert_eq!(by_cat.values().next(), Some(&(4usize, 1usize)));
        assert!(suite.get("b").is_some());
        assert!(suite.get("zzz").is_none());
        let text = suite.render_text();
        assert!(text.contains("suite: 2 applications"));
        assert!(text.contains("per-category rollup"));
    }
}
