//! Normal-build personality: std threads, unwrapped.

pub use std::thread::{
    available_parallelism, panicking, scope, sleep, spawn, yield_now, JoinHandle, Result, Scope, ScopedJoinHandle,
};
