//! Model-checking the engine's concurrency protocols (run via
//! `cargo test --features model-check --test model_check`; see the CI
//! `sched` job).
//!
//! Three guarantees are pinned here:
//!
//! 1. The production protocols — the executor's sharded close/pending
//!    queue, the result cache's claim protocol, plan-order reassembly —
//!    explore **exhaustively** (within the preemption bound) with zero
//!    races, deadlocks, lost wakeups, and livelocks.
//! 2. The two seeded mutants (bugs this codebase once shipped or could
//!    plausibly ship) are **killed** within bounded exploration — the
//!    checker's detection power is itself under test.
//! 3. A seeded random walk agrees with the DFS on a mutant, so the
//!    sampling mode usable on bigger state spaces is wired correctly.
#![cfg(feature = "model-check")]

use epa_core::engine::modelcheck;
use shim_sync::model::{Config, FailureKind, Strategy};

/// The fixtures' exploration budget: preemption bound 2 (every bug
/// class seeded here needs at most one adversarial preemption), with a
/// step ceiling low enough to flag livelocks quickly.
fn cfg() -> Config {
    Config {
        max_steps: 5_000,
        ..Config::default()
    }
}

#[test]
fn close_protocol_is_clean_under_exhaustive_exploration() {
    let report = modelcheck::check_close_protocol(&cfg());
    report.assert_complete();
    assert!(report.iterations > 1, "the fixture must actually branch");
}

#[test]
fn claim_protocol_is_clean_under_exhaustive_exploration() {
    modelcheck::check_claim_protocol(&cfg()).assert_complete();
}

#[test]
fn abandoned_claims_never_strand_a_waiter() {
    modelcheck::check_claim_abandon(&cfg()).assert_complete();
}

#[test]
fn indexed_reassembly_is_byte_identical_to_sequential_in_every_schedule() {
    modelcheck::check_indexed_reassembly(&cfg()).assert_complete();
}

#[test]
fn expanding_reassembly_survives_adversarial_steal_order() {
    modelcheck::check_expanding_reassembly(&cfg()).assert_complete();
}

#[test]
fn seeded_close_race_mutant_is_killed() {
    let report = modelcheck::check_close_protocol_mutant(&cfg());
    let failure = report.expect_failure("the pending-outside-lock mutant must be caught");
    assert_eq!(
        failure.kind,
        FailureKind::StepBound,
        "the stale pending count manifests as a sibling livelock: {failure:?}"
    );
}

#[test]
fn seeded_claim_drop_mutant_is_killed() {
    let report = modelcheck::check_claim_protocol_mutant(&cfg());
    let failure = report.expect_failure("the drop-before-signal mutant must be caught");
    assert_eq!(
        failure.kind,
        FailureKind::Panic,
        "the gap between drop and publish double-executes the run: {failure:?}"
    );
}

#[test]
fn random_walk_also_kills_the_claim_mutant() {
    let cfg = Config {
        strategy: Strategy::Random { seed: 0xEAC5 },
        max_iterations: 5_000,
        max_steps: 5_000,
        ..Config::default()
    };
    let report = modelcheck::check_claim_protocol_mutant(&cfg);
    let failure = report.expect_failure("the random walk must kill the mutant within its iteration budget");
    assert_eq!(failure.kind, FailureKind::Panic);
}
