//! Model-check personality for `std::thread`: spawned threads register
//! with the active execution and run under the cooperative scheduler;
//! joins are model-level blocking operations. Without an active
//! execution everything forwards to std.

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Mutex as StdMutex, PoisonError};
use std::time::Duration;

pub use std::thread::{available_parallelism, panicking, Result};

use crate::model::{ctx, thread_body};

/// Model-aware `std::thread::spawn`. Inside an execution the child
/// becomes a model thread; it MUST be joined before the checked closure
/// returns (use scopes, or keep the handle).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
        Some(c) => {
            let tid = c.exec.spawn_thread(c.tid);
            let exec = c.exec.clone();
            JoinHandle {
                inner: std::thread::spawn(move || thread_body(exec, tid, f)),
                model: Some(tid),
            }
        }
    }
}

/// Model-aware join handle.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread (a model blocking point when applicable).
    pub fn join(self) -> Result<T> {
        if let Some(target) = self.model {
            if let Some(c) = ctx() {
                c.exec.join_thread(c.tid, target);
            }
        }
        self.inner.join()
    }

    /// Whether the thread has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

struct ScopeModel {
    pending: StdMutex<Vec<usize>>,
}

/// Model-aware `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    std: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<ScopeModel>,
}

/// Model-aware scoped join handle.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<usize>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread (registered with the execution when one
    /// is active).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            None => ScopedJoinHandle {
                inner: self.std.spawn(f),
                model: None,
            },
            Some(m) => {
                let c = ctx().expect("scope.spawn called from a model thread");
                let tid = c.exec.spawn_thread(c.tid);
                m.pending.lock().unwrap_or_else(PoisonError::into_inner).push(tid);
                let exec = c.exec.clone();
                ScopedJoinHandle {
                    inner: self.std.spawn(move || thread_body(exec, tid, f)),
                    model: Some(tid),
                }
            }
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread (idempotent at the model level — the scope
    /// end will model-join it again harmlessly).
    pub fn join(self) -> Result<T> {
        if let Some(target) = self.model {
            if let Some(c) = ctx() {
                c.exec.join_thread(c.tid, target);
            }
        }
        self.inner.join()
    }

    /// Whether the thread has finished.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Model-aware `std::thread::scope`. On the model path every spawned
/// thread is model-joined before the std scope's implicit join — even
/// when the closure unwinds — so the scope owner can never hold the
/// scheduling token while parked in a real (non-model) join.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    match ctx() {
        None => std::thread::scope(|s| f(&Scope { std: s, model: None })),
        Some(c) => std::thread::scope(|s| {
            let sc = Scope {
                std: s,
                model: Some(ScopeModel {
                    pending: StdMutex::new(Vec::new()),
                }),
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&sc)));
            let pending: Vec<usize> = {
                let model = sc.model.as_ref().expect("model scope");
                let mut p = model.pending.lock().unwrap_or_else(PoisonError::into_inner);
                p.drain(..).collect()
            };
            let mut join_panic = None;
            for tid in pending {
                if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| c.exec.join_thread(c.tid, tid))) {
                    // Aborted schedule: remaining threads unwind on
                    // their own; the std scope join below collects them.
                    join_panic = Some(p);
                    break;
                }
            }
            match result {
                Ok(v) => {
                    if let Some(p) = join_panic {
                        panic::resume_unwind(p);
                    }
                    v
                }
                Err(p) => panic::resume_unwind(p),
            }
        }),
    }
}

/// Model-aware `yield_now`: a pure preemption point inside an execution.
pub fn yield_now() {
    match ctx() {
        Some(c) => c.exec.yield_op(c.tid),
        None => std::thread::yield_now(),
    }
}

/// Model-aware `sleep`: modeled time does not exist, so inside an
/// execution this is just a preemption point.
pub fn sleep(dur: Duration) {
    match ctx() {
        Some(c) => {
            let _ = dur;
            c.exec.yield_op(c.tid);
        }
        None => std::thread::sleep(dur),
    }
}
