//! The declarative world layer: scenario worlds as *data*.
//!
//! A [`WorldSpec`] lists everything a campaign world contains — users,
//! directories, files, symlinks, oracle tags, registry keys, DNS entries,
//! network services, queued messages — plus the spawn parameters of the
//! application under test. Specs are built with the [`ScenarioBuilder`],
//! validated once ([`WorldSpec::validate`]), and materialized into a
//! [`TestSetup`] ([`WorldSpec::materialize`]) that campaigns snapshot
//! copy-on-write per injected fault.
//!
//! Compared to hand-assembled `put_file`/`mkdir_p` boilerplate, a spec is
//! reusable across campaigns, serializable, diffable, and checked up front:
//! a typo'd relative path or an undeclared program fails at build time with
//! a [`SpecError`], not halfway through a fault run.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use epa_sandbox::cred::{Gid, Uid};
use epa_sandbox::fs::FileTag;
use epa_sandbox::mode::Mode;
use epa_sandbox::net::Message;
use epa_sandbox::os::{Os, ScenarioMeta};
use epa_sandbox::policy::InvariantSpec;
use epa_sandbox::registry::RegAcl;

use crate::campaign::TestSetup;
use crate::perturb::tag_standard_targets;

/// Why a [`WorldSpec`] failed to validate or materialize.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// A path that must be absolute is not.
    RelativePath {
        /// What kind of entry held the path.
        what: &'static str,
        /// The offending path.
        path: String,
    },
    /// Two entries declare the same file-system path.
    DuplicatePath {
        /// The duplicated path.
        path: String,
    },
    /// Two users share a name (uids may repeat: one uid can have several
    /// account names).
    DuplicateUser {
        /// The duplicated name.
        who: String,
    },
    /// A declared file or symlink sits where another declared entry needs a
    /// directory (building it would orphan the subtree).
    NotADirectory {
        /// The file/symlink path that other entries nest under.
        path: String,
    },
    /// A registry key path is empty — typically a `registry_value` declared
    /// before any `registry_key`.
    EmptyRegistryKey {
        /// The first value name on the empty key, if any.
        value: Option<String>,
    },
    /// The effective invoker is not among the declared users.
    UndeclaredInvoker {
        /// The invoker uid.
        uid: Uid,
    },
    /// The program under test is not declared as a file or symlink.
    UndeclaredProgram {
        /// The program path.
        path: String,
    },
    /// A mode has bits outside `0o7777`.
    BadMode {
        /// The path carrying the mode.
        path: String,
        /// The offending bits.
        mode: u16,
    },
    /// An oracle tag names a path the spec never creates.
    MissingTagTarget {
        /// The tagged path.
        path: String,
    },
    /// The working directory does not exist in the materialized world.
    MissingCwd {
        /// The working directory.
        path: String,
    },
    /// A god-mode build step failed (surfaced with the substrate's error).
    Build {
        /// The entry that failed.
        what: String,
        /// The substrate error text.
        error: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::RelativePath { what, path } => write!(f, "{what} path `{path}` is not absolute"),
            SpecError::DuplicatePath { path } => write!(f, "path `{path}` is declared twice"),
            SpecError::DuplicateUser { who } => write!(f, "user `{who}` is declared twice"),
            SpecError::NotADirectory { path } => {
                write!(
                    f,
                    "`{path}` is declared as a file or symlink but other entries nest under it"
                )
            }
            SpecError::EmptyRegistryKey { value } => match value {
                Some(v) => write!(
                    f,
                    "registry value `{v}` is declared on an empty key path (declare a key first)"
                ),
                None => write!(f, "a registry key has an empty path"),
            },
            SpecError::UndeclaredInvoker { uid } => write!(f, "invoker {uid} is not a declared user"),
            SpecError::UndeclaredProgram { path } => {
                write!(f, "program `{path}` is not declared as a file or symlink")
            }
            SpecError::BadMode { path, mode } => write!(f, "mode {mode:#o} on `{path}` has bits outside 0o7777"),
            SpecError::MissingTagTarget { path } => write!(f, "tag target `{path}` is never created"),
            SpecError::MissingCwd { path } => write!(f, "working directory `{path}` does not exist in the world"),
            SpecError::Build { what, error } => write!(f, "building {what}: {error}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// One declared account.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserSpec {
    /// Account name.
    pub name: String,
    /// User id.
    pub uid: Uid,
    /// Primary group id.
    pub gid: Gid,
    /// Home directory (informational; not implicitly created).
    pub home: String,
}

/// One declared directory (created with all missing ancestors).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirSpec {
    /// Absolute path.
    pub path: String,
    /// Owning user.
    pub owner: Uid,
    /// Owning group.
    pub group: Gid,
    /// Permission bits.
    pub mode: u16,
}

/// One declared regular file (parents created root-owned `0755`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSpec {
    /// Absolute path.
    pub path: String,
    /// Content bytes (text).
    pub content: String,
    /// Owning user.
    pub owner: Uid,
    /// Owning group.
    pub group: Gid,
    /// Permission bits.
    pub mode: u16,
}

/// One declared symbolic link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymlinkSpec {
    /// Absolute path of the link itself.
    pub link: String,
    /// Target path text.
    pub target: String,
}

/// One declared registry key with its values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegKeySpec {
    /// `/`-separated key path.
    pub key: String,
    /// Whether everyone may write the key (the "unprotected" condition).
    pub world_writable: bool,
    /// Named string values set on the key.
    pub values: Vec<(String, String)>,
}

/// One declared remote network service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Host offering the service.
    pub host: String,
    /// Port.
    pub port: u16,
    /// Whether the peer entity is trusted.
    pub trusted: bool,
}

/// One genuine message queued on an inbound port before the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InboundSpec {
    /// Local port.
    pub port: u16,
    /// Origin (claimed and actual agree — perturbations spoof later).
    pub from: String,
    /// Payload text.
    pub data: String,
}

/// One genuine message queued on an IPC channel before the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpcSpec {
    /// Channel name.
    pub channel: String,
    /// Origin.
    pub from: String,
    /// Payload text.
    pub data: String,
}

/// A campaign world declared as data. Build with [`WorldSpec::builder`],
/// validate once, materialize into a [`TestSetup`] as often as needed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldSpec {
    /// Scenario metadata (attack targets, invoker/attacker identities).
    pub scenario: ScenarioMeta,
    /// Declared accounts.
    pub users: Vec<UserSpec>,
    /// Declared directories.
    pub dirs: Vec<DirSpec>,
    /// Declared regular files.
    pub files: Vec<FileSpec>,
    /// Declared symlinks.
    pub symlinks: Vec<SymlinkSpec>,
    /// Extra oracle tags beyond the scenario's standard targets.
    pub tags: Vec<(String, FileTag)>,
    /// Declared registry keys.
    pub reg_keys: Vec<RegKeySpec>,
    /// DNS entries (name, address).
    pub dns: Vec<(String, String)>,
    /// Remote services.
    pub services: Vec<ServiceSpec>,
    /// Pre-queued inbound network messages.
    pub inbound: Vec<InboundSpec>,
    /// Pre-queued IPC messages.
    pub ipc: Vec<IpcSpec>,
    /// Program file to spawn from (SUID semantics apply); `None` spawns
    /// with the invoker's plain credentials.
    pub program: Option<String>,
    /// Explicit invoker override (defaults to the scenario invoker).
    pub invoker: Option<Uid>,
    /// Argument vector.
    pub args: Vec<String>,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Initial working directory.
    pub cwd: String,
    /// Whether to tag the scenario's standard attack targets
    /// (see [`tag_standard_targets`]); on by default.
    pub standard_tags: bool,
    /// Declarative custom invariants, compiled into oracle detectors for
    /// every run of this world (replacing in-code-only custom checks with
    /// serializable data the spec round-trips).
    pub invariants: Vec<InvariantSpec>,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            scenario: ScenarioMeta::default(),
            users: Vec::new(),
            dirs: Vec::new(),
            files: Vec::new(),
            symlinks: Vec::new(),
            tags: Vec::new(),
            reg_keys: Vec::new(),
            dns: Vec::new(),
            services: Vec::new(),
            inbound: Vec::new(),
            ipc: Vec::new(),
            program: None,
            invoker: None,
            args: Vec::new(),
            env: BTreeMap::new(),
            cwd: "/".to_string(),
            standard_tags: true,
            invariants: Vec::new(),
        }
    }
}

impl WorldSpec {
    /// Starts a builder with the default scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    /// The effective invoker: the explicit override or the scenario's.
    pub fn effective_invoker(&self) -> Uid {
        self.invoker.unwrap_or(self.scenario.invoker)
    }

    /// Checks the spec without building anything.
    ///
    /// # Errors
    ///
    /// See [`SpecError`]: relative paths, duplicate paths/users, modes with
    /// bits outside `0o7777`, an undeclared program, or an invoker that is
    /// not a declared user.
    pub fn validate(&self) -> Result<(), SpecError> {
        let abs = |what: &'static str, path: &str| -> Result<(), SpecError> {
            if path.starts_with('/') {
                Ok(())
            } else {
                Err(SpecError::RelativePath {
                    what,
                    path: path.to_string(),
                })
            }
        };
        let mut seen_paths = std::collections::BTreeSet::new();
        for d in &self.dirs {
            abs("directory", &d.path)?;
            if d.mode > 0o7777 {
                return Err(SpecError::BadMode {
                    path: d.path.clone(),
                    mode: d.mode,
                });
            }
            // Re-declaring a directory is benign (mkdir_p is idempotent),
            // but a dir colliding with a file/symlink below is not.
            seen_paths.insert(d.path.as_str());
        }
        for f in &self.files {
            abs("file", &f.path)?;
            if f.mode > 0o7777 {
                return Err(SpecError::BadMode {
                    path: f.path.clone(),
                    mode: f.mode,
                });
            }
            if !seen_paths.insert(f.path.as_str()) {
                return Err(SpecError::DuplicatePath { path: f.path.clone() });
            }
        }
        for l in &self.symlinks {
            abs("symlink", &l.link)?;
            if !seen_paths.insert(l.link.as_str()) {
                return Err(SpecError::DuplicatePath { path: l.link.clone() });
            }
        }
        // A file/symlink must never sit where another declared entry needs a
        // directory: `put_file` would replace the directory inode and orphan
        // everything below it. (Declared dirs may nest freely.)
        for leaf in self
            .files
            .iter()
            .map(|f| f.path.as_str())
            .chain(self.symlinks.iter().map(|l| l.link.as_str()))
        {
            let prefix = format!("{leaf}/");
            if seen_paths.iter().any(|p| p.starts_with(&prefix)) {
                return Err(SpecError::NotADirectory { path: leaf.to_string() });
            }
        }
        for k in &self.reg_keys {
            if k.key.is_empty() {
                return Err(SpecError::EmptyRegistryKey {
                    value: k.values.first().map(|(n, _)| n.clone()),
                });
            }
        }
        for (path, _) in &self.tags {
            abs("tag", path)?;
        }
        for inv in &self.invariants {
            if let Some(path) = inv.constrained_path() {
                abs("invariant", path)?;
            }
        }
        abs("cwd", &self.cwd)?;
        // Names must be unique; uids may repeat (a uid can have several
        // account names, as the fingerd/authd worlds do).
        let mut names = std::collections::BTreeSet::new();
        for u in &self.users {
            if !names.insert(u.name.as_str()) {
                return Err(SpecError::DuplicateUser { who: u.name.clone() });
            }
        }
        let invoker = self.effective_invoker();
        if !self.users.iter().any(|u| u.uid == invoker) {
            return Err(SpecError::UndeclaredInvoker { uid: invoker });
        }
        if let Some(p) = &self.program {
            abs("program", p)?;
            let declared = self.files.iter().any(|f| &f.path == p) || self.symlinks.iter().any(|l| &l.link == p);
            if !declared {
                return Err(SpecError::UndeclaredProgram { path: p.clone() });
            }
        }
        Ok(())
    }

    /// Validates the spec and builds the pristine world plus spawn
    /// parameters.
    ///
    /// # Errors
    ///
    /// Everything [`WorldSpec::validate`] reports, plus materialization
    /// failures: a tag naming a path that was never created, a working
    /// directory missing from the built world, or a substrate error while
    /// building ([`SpecError::Build`]).
    pub fn materialize(&self) -> Result<TestSetup, SpecError> {
        self.validate()?;
        let mut os = Os::with_scenario(self.scenario.clone());
        for u in &self.users {
            os.users.add(&u.name, u.uid, u.gid, &u.home);
        }
        for d in &self.dirs {
            os.fs
                .mkdir_p(&d.path, d.owner, d.group, Mode::new(d.mode))
                .map_err(|e| SpecError::Build {
                    what: format!("directory `{}`", d.path),
                    error: e.to_string(),
                })?;
        }
        for f in &self.files {
            os.fs
                .put_file(&f.path, f.content.as_str(), f.owner, f.group, Mode::new(f.mode))
                .map_err(|e| SpecError::Build {
                    what: format!("file `{}`", f.path),
                    error: e.to_string(),
                })?;
        }
        for l in &self.symlinks {
            os.fs.god_symlink(&l.link, &l.target).map_err(|e| SpecError::Build {
                what: format!("symlink `{}`", l.link),
                error: e.to_string(),
            })?;
        }
        for k in &self.reg_keys {
            os.registry.ensure_key(
                &k.key,
                RegAcl {
                    owner: Uid::ROOT,
                    world_writable: k.world_writable,
                },
            );
            for (name, value) in &k.values {
                os.registry.god_set_value(&k.key, name, value.clone());
            }
        }
        for (name, addr) in &self.dns {
            os.net.add_dns(name.clone(), addr.clone());
        }
        for s in &self.services {
            os.net.add_service(s.host.clone(), s.port, s.trusted);
        }
        for m in &self.inbound {
            os.net
                .push_message(m.port, Message::genuine(m.from.clone(), m.data.as_str()));
        }
        for m in &self.ipc {
            os.net
                .push_ipc(m.channel.clone(), Message::genuine(m.from.clone(), m.data.as_str()));
        }
        if self.standard_tags {
            tag_standard_targets(&mut os);
        }
        for (path, tag) in &self.tags {
            os.fs
                .tag(path, *tag)
                .map_err(|_| SpecError::MissingTagTarget { path: path.clone() })?;
        }
        if os.fs.walk(&self.cwd, true, None).is_err() {
            return Err(SpecError::MissingCwd { path: self.cwd.clone() });
        }
        // Safety net behind validation: a structurally broken world must
        // never leave this function.
        os.fs.check_invariants().map_err(|e| SpecError::Build {
            what: "file system".to_string(),
            error: e,
        })?;
        let mut setup = TestSetup::new(os);
        if let Some(p) = &self.program {
            setup = setup.program(p.clone());
        }
        if let Some(uid) = self.invoker {
            setup = setup.invoker(uid);
        }
        setup = setup.args(self.args.clone()).cwd(self.cwd.clone());
        for (k, v) in &self.env {
            setup = setup.env(k.clone(), v.clone());
        }
        for inv in &self.invariants {
            setup = setup.invariant(inv.clone());
        }
        Ok(setup)
    }
}

/// Chainable builder for [`WorldSpec`]s. Every method is `#[must_use]`;
/// finish with [`ScenarioBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    spec: WorldSpec,
}

impl ScenarioBuilder {
    /// A builder over the default scenario.
    pub fn new() -> Self {
        ScenarioBuilder::default()
    }

    /// A builder over explicit scenario metadata.
    pub fn with_scenario(scenario: ScenarioMeta) -> Self {
        ScenarioBuilder {
            spec: WorldSpec {
                scenario,
                ..WorldSpec::default()
            },
        }
    }

    /// Replaces the scenario metadata (attack targets, identities) without
    /// touching the declared world entries.
    #[must_use]
    pub fn scenario(mut self, scenario: ScenarioMeta) -> Self {
        self.spec.scenario = scenario;
        self
    }

    /// Declares an account.
    #[must_use]
    pub fn user(mut self, name: impl Into<String>, uid: Uid, gid: Gid, home: impl Into<String>) -> Self {
        self.spec.users.push(UserSpec {
            name: name.into(),
            uid,
            gid,
            home: home.into(),
        });
        self
    }

    /// Declares a directory (with all missing ancestors).
    #[must_use]
    pub fn dir(mut self, path: impl Into<String>, owner: Uid, group: Gid, mode: u16) -> Self {
        self.spec.dirs.push(DirSpec {
            path: path.into(),
            owner,
            group,
            mode,
        });
        self
    }

    /// Declares a regular file.
    #[must_use]
    pub fn file(
        mut self,
        path: impl Into<String>,
        content: impl Into<String>,
        owner: Uid,
        group: Gid,
        mode: u16,
    ) -> Self {
        self.spec.files.push(FileSpec {
            path: path.into(),
            content: content.into(),
            owner,
            group,
            mode,
        });
        self
    }

    /// Declares a root-owned file (the common case for system objects).
    #[must_use]
    pub fn root_file(self, path: impl Into<String>, content: impl Into<String>, mode: u16) -> Self {
        self.file(path, content, Uid::ROOT, Gid::ROOT, mode)
    }

    /// Declares an empty root-owned SUID-root program file *and* selects it
    /// as the program under test.
    #[must_use]
    pub fn suid_root_program(self, path: impl Into<String>) -> Self {
        let path = path.into();
        self.root_file(path.clone(), "", 0o4755).program(path)
    }

    /// Declares an empty root-owned `0755` program file *and* selects it as
    /// the program under test (no SUID bit).
    #[must_use]
    pub fn root_program(self, path: impl Into<String>) -> Self {
        let path = path.into();
        self.root_file(path.clone(), "", 0o755).program(path)
    }

    /// Declares a symbolic link.
    #[must_use]
    pub fn symlink(mut self, link: impl Into<String>, target: impl Into<String>) -> Self {
        self.spec.symlinks.push(SymlinkSpec {
            link: link.into(),
            target: target.into(),
        });
        self
    }

    /// Attaches an oracle tag to a declared path.
    #[must_use]
    pub fn tag(mut self, path: impl Into<String>, tag: FileTag) -> Self {
        self.spec.tags.push((path.into(), tag));
        self
    }

    /// Declares a registry key.
    #[must_use]
    pub fn registry_key(mut self, key: impl Into<String>, world_writable: bool) -> Self {
        self.spec.reg_keys.push(RegKeySpec {
            key: key.into(),
            world_writable,
            values: Vec::new(),
        });
        self
    }

    /// Sets a value on the most recently declared registry key (declares the
    /// key protected if none was declared yet).
    #[must_use]
    pub fn registry_value(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        if self.spec.reg_keys.is_empty() {
            self.spec.reg_keys.push(RegKeySpec {
                key: String::new(),
                world_writable: false,
                values: Vec::new(),
            });
        }
        let last = self.spec.reg_keys.last_mut().expect("just ensured non-empty");
        last.values.push((name.into(), value.into()));
        self
    }

    /// Installs a DNS entry.
    #[must_use]
    pub fn dns(mut self, name: impl Into<String>, addr: impl Into<String>) -> Self {
        self.spec.dns.push((name.into(), addr.into()));
        self
    }

    /// Declares a remote service.
    #[must_use]
    pub fn service(mut self, host: impl Into<String>, port: u16, trusted: bool) -> Self {
        self.spec.services.push(ServiceSpec {
            host: host.into(),
            port,
            trusted,
        });
        self
    }

    /// Queues a genuine inbound message.
    #[must_use]
    pub fn inbound_message(mut self, port: u16, from: impl Into<String>, data: impl Into<String>) -> Self {
        self.spec.inbound.push(InboundSpec {
            port,
            from: from.into(),
            data: data.into(),
        });
        self
    }

    /// Queues a genuine IPC message.
    #[must_use]
    pub fn ipc_message(mut self, channel: impl Into<String>, from: impl Into<String>, data: impl Into<String>) -> Self {
        self.spec.ipc.push(IpcSpec {
            channel: channel.into(),
            from: from.into(),
            data: data.into(),
        });
        self
    }

    /// Selects the program under test.
    #[must_use]
    pub fn program(mut self, path: impl Into<String>) -> Self {
        self.spec.program = Some(path.into());
        self
    }

    /// Overrides the invoking user.
    #[must_use]
    pub fn invoker(mut self, uid: Uid) -> Self {
        self.spec.invoker = Some(uid);
        self
    }

    /// Sets the argument vector.
    #[must_use]
    pub fn args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.spec.args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Sets one environment variable.
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.spec.env.insert(key.into(), value.into());
        self
    }

    /// Sets the initial working directory.
    #[must_use]
    pub fn cwd(mut self, dir: impl Into<String>) -> Self {
        self.spec.cwd = dir.into();
        self
    }

    /// Declares a custom invariant the oracle enforces on every run (e.g.
    /// [`InvariantSpec::file_pristine`]); verdicts surface as
    /// `custom`-family violations with rule `invariant:<label>`.
    #[must_use]
    pub fn invariant(mut self, spec: InvariantSpec) -> Self {
        self.spec.invariants.push(spec);
        self
    }

    /// Disables the standard attack-target tagging.
    #[must_use]
    pub fn without_standard_tags(mut self) -> Self {
        self.spec.standard_tags = false;
        self
    }

    /// Finishes the spec (no validation; see [`WorldSpec::validate`]).
    pub fn build(self) -> WorldSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ScenarioBuilder {
        let scenario = ScenarioMeta::default();
        ScenarioBuilder::new()
            .user("root", Uid::ROOT, Gid::ROOT, "/root")
            .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
            .dir("/var/spool/lpd", Uid::ROOT, Gid::ROOT, 0o755)
            .root_file("/etc/passwd", "root:0:0:", 0o644)
            .root_file("/etc/shadow", "root:HASH", 0o600)
            .suid_root_program("/usr/bin/lpr")
    }

    #[test]
    fn minimal_spec_validates_and_materializes() {
        let spec = minimal().build();
        spec.validate().unwrap();
        let setup = spec.materialize().unwrap();
        assert_eq!(setup.program.as_deref(), Some("/usr/bin/lpr"));
        assert!(setup.world.fs.exists("/etc/shadow"));
        // Standard targets were tagged.
        let st = setup.world.fs.stat("/etc/shadow", None).unwrap();
        assert!(st.tags.contains(&FileTag::Secret));
        setup.world.fs.check_invariants().unwrap();
    }

    #[test]
    fn relative_paths_are_rejected() {
        let spec = minimal().file("oops.txt", "", Uid::ROOT, Gid::ROOT, 0o644).build();
        assert!(matches!(
            spec.validate(),
            Err(SpecError::RelativePath { what: "file", .. })
        ));
    }

    #[test]
    fn duplicate_paths_are_rejected() {
        let spec = minimal().root_file("/etc/passwd", "second", 0o644).build();
        assert_eq!(
            spec.validate(),
            Err(SpecError::DuplicatePath {
                path: "/etc/passwd".into()
            })
        );
    }

    #[test]
    fn file_shadowing_a_declared_directory_is_rejected() {
        // `/var/spool/lpd` is declared as a directory; a file at
        // `/var/spool` would replace that directory's parent inode and
        // orphan the subtree. Validation must refuse up front.
        let spec = minimal().root_file("/var/spool", "not a dir", 0o644).build();
        assert_eq!(
            spec.validate(),
            Err(SpecError::NotADirectory {
                path: "/var/spool".into()
            })
        );
    }

    #[test]
    fn file_shadowing_another_files_parent_is_rejected() {
        let spec = minimal()
            .root_file("/srv/app", "leaf", 0o644)
            .root_file("/srv/app/conf", "nested", 0o644)
            .build();
        assert_eq!(
            spec.validate(),
            Err(SpecError::NotADirectory {
                path: "/srv/app".into()
            })
        );
    }

    #[test]
    fn registry_value_without_a_key_is_rejected() {
        let spec = ScenarioBuilder::new().registry_value("Path", "/x").build();
        assert_eq!(
            spec.validate(),
            Err(SpecError::EmptyRegistryKey {
                value: Some("Path".into())
            })
        );
    }

    #[test]
    fn undeclared_program_is_rejected() {
        let spec = minimal().program("/usr/bin/other").build();
        assert_eq!(
            spec.validate(),
            Err(SpecError::UndeclaredProgram {
                path: "/usr/bin/other".into()
            })
        );
    }

    #[test]
    fn undeclared_invoker_is_rejected() {
        let spec = minimal().invoker(Uid(4242)).build();
        assert_eq!(spec.validate(), Err(SpecError::UndeclaredInvoker { uid: Uid(4242) }));
    }

    #[test]
    fn bad_mode_is_rejected() {
        let spec = minimal().root_file("/etc/odd", "", 0o10000).build();
        assert!(matches!(spec.validate(), Err(SpecError::BadMode { .. })));
    }

    #[test]
    fn missing_tag_target_fails_materialization() {
        let spec = minimal().tag("/no/such/file", FileTag::Secret).build();
        assert_eq!(
            spec.materialize().unwrap_err(),
            SpecError::MissingTagTarget {
                path: "/no/such/file".into()
            }
        );
    }

    #[test]
    fn missing_cwd_fails_materialization() {
        let spec = minimal().cwd("/nowhere").build();
        assert_eq!(
            spec.materialize().unwrap_err(),
            SpecError::MissingCwd {
                path: "/nowhere".into()
            }
        );
    }

    #[test]
    fn registry_and_network_entries_materialize() {
        let spec = minimal()
            .registry_key("HKLM/Software/Fonts/Cache0", true)
            .registry_value("Path", "/winnt/fonts/cache0.fon")
            .dns("trusted.cs.example.edu", "10.0.5.1")
            .service("trusted.cs.example.edu", 1023, true)
            .inbound_message(79, "trusted.cs.example.edu", "user1001")
            .ipc_message("maild", "maild", "From: alice")
            .build();
        let setup = spec.materialize().unwrap();
        let os = &setup.world;
        assert_eq!(os.registry.unprotected_keys().len(), 1);
        assert_eq!(os.net.resolve("trusted.cs.example.edu").unwrap(), "10.0.5.1");
        assert!(os.net.service("trusted.cs.example.edu", 1023).is_some());
        assert_eq!(os.net.queue_len(79), 1);
    }

    #[test]
    fn specs_serialize_round_trip() {
        let spec = minimal()
            .invariant(InvariantSpec::file_pristine("/etc/shadow"))
            .invariant(InvariantSpec::require_rule("auth"))
            .build();
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorldSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.invariants.len(), 2);
    }

    #[test]
    fn relative_invariant_paths_are_rejected() {
        let spec = minimal().invariant(InvariantSpec::file_pristine("etc/motd")).build();
        assert!(matches!(
            spec.validate(),
            Err(SpecError::RelativePath { what: "invariant", .. })
        ));
    }

    #[test]
    fn invariants_reach_the_materialized_setup_and_its_oracle() {
        let spec = minimal().invariant(InvariantSpec::forbid_exec("/tmp")).build();
        let setup = spec.materialize().unwrap();
        assert_eq!(setup.invariants.len(), 1);
        // Standard eight families plus the compiled invariant.
        assert_eq!(setup.oracle().len(), 9);
        assert!(setup.oracle().names().contains(&"invariant"));
    }
}
