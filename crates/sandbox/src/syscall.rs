//! The syscall vocabulary: what applications may ask of their environment,
//! and the hook interface the fault injector uses to perturb those asks.
//!
//! Each [`Syscall`] names one environment–application interaction. The
//! dispatcher in [`crate::os`] stamps every call into the execution trace
//! and surrounds it with the [`Interceptor`] hook: `before` runs with the
//! call *about to happen* (where **direct** environment faults are applied,
//! paper §3.3 step 6), `after` runs with the produced result (where
//! **indirect** faults mutate the value the internal entity receives).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::cred::Uid;
use crate::data::{Data, Label, PathArg};
use crate::error::SysResult;
use crate::fs::Stat;
use crate::net::Message;
use crate::os::Os;
use crate::trace::{InputSemantic, ObjectRef, OpKind, SiteId};

/// A request an application makes of its environment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Syscall {
    /// Read an environment variable (fails `ENOENT` when unset).
    Getenv {
        /// Variable name.
        name: String,
        /// Semantics of the value.
        semantic: InputSemantic,
    },
    /// Read argv\[index\] (fails `EINVAL` when absent).
    ReadArg {
        /// Zero-based argument index.
        index: usize,
        /// Semantics of the argument.
        semantic: InputSemantic,
    },
    /// Bind an already-parsed input value to an internal entity. A no-op
    /// passthrough that exists so indirect faults can strike *after* the
    /// application extracts a field from raw input.
    InputBind {
        /// Internal-entity name, for diagnostics.
        entity: String,
        /// Semantics of the value.
        semantic: InputSemantic,
        /// The value being bound.
        value: Data,
    },
    /// Read a whole file.
    ReadFile {
        /// The file.
        path: PathArg,
    },
    /// `creat`: create-or-truncate, then write `data`.
    WriteFile {
        /// The file.
        path: PathArg,
        /// Content to write.
        data: Data,
        /// Creation mode bits.
        mode: u16,
    },
    /// `open(O_CREAT|O_EXCL)`: exclusive creation of an empty file.
    CreateExcl {
        /// The file.
        path: PathArg,
        /// Creation mode bits.
        mode: u16,
    },
    /// Append to a file, creating it if missing.
    AppendFile {
        /// The file.
        path: PathArg,
        /// Content to append.
        data: Data,
        /// Creation mode bits if the file must be created.
        mode: u16,
    },
    /// Remove a file.
    Unlink {
        /// The file.
        path: PathArg,
    },
    /// Create a directory.
    Mkdir {
        /// The directory.
        path: PathArg,
        /// Creation mode bits.
        mode: u16,
    },
    /// Change the working directory.
    Chdir {
        /// The directory.
        path: PathArg,
    },
    /// `stat` (follows symlinks).
    StatPath {
        /// The path.
        path: PathArg,
    },
    /// `lstat` (does not follow a final symlink).
    LstatPath {
        /// The path.
        path: PathArg,
    },
    /// Create a symbolic link.
    SymlinkCreate {
        /// Link target text.
        target: String,
        /// Where the link is created.
        link: PathArg,
    },
    /// Read a symlink's target.
    Readlink {
        /// The link.
        path: PathArg,
    },
    /// Rename a file.
    Rename {
        /// Source path.
        from: PathArg,
        /// Destination path.
        to: PathArg,
    },
    /// Change permission bits.
    Chmod {
        /// The path.
        path: PathArg,
        /// New mode bits.
        mode: u16,
    },
    /// Change ownership (root only).
    Chown {
        /// The path.
        path: PathArg,
        /// New owner.
        owner: Uid,
    },
    /// List a directory.
    ListDir {
        /// The directory.
        path: PathArg,
    },
    /// Execute a program. With a bare program name, `path_list` (usually
    /// the value of `PATH`) is searched, carrying its taint into the
    /// resolution.
    Exec {
        /// Program path or bare name.
        program: PathArg,
        /// Argument vector.
        args: Vec<Data>,
        /// Search path for bare names.
        path_list: Option<Data>,
    },
    /// Write to standard output.
    Print {
        /// The data (labels ride along to the sink).
        data: Data,
    },
    /// Read a registry value.
    RegRead {
        /// Key path (`/`-separated).
        key: String,
        /// Value name.
        value: String,
        /// Semantics of the stored value.
        semantic: InputSemantic,
    },
    /// Write a registry value.
    RegWrite {
        /// Key path.
        key: String,
        /// Value name.
        value: String,
        /// New data.
        data: String,
    },
    /// Delete a registry value.
    RegDelete {
        /// Key path.
        key: String,
        /// Value name.
        value: String,
    },
    /// Connect to a network service.
    NetConnect {
        /// Remote host.
        host: String,
        /// Remote port.
        port: u16,
    },
    /// Send a network message.
    NetSend {
        /// Destination host.
        host: String,
        /// Destination port.
        port: u16,
        /// Payload.
        data: Data,
    },
    /// Receive the next message on a local port.
    NetRecv {
        /// Local port.
        port: u16,
        /// Semantics of the payload.
        semantic: InputSemantic,
    },
    /// Resolve a host name.
    DnsResolve {
        /// The name.
        host: String,
        /// Semantics of the reply.
        semantic: InputSemantic,
    },
    /// Receive the next IPC message on a named channel.
    ProcRecv {
        /// Channel name.
        channel: String,
        /// Semantics of the payload.
        semantic: InputSemantic,
    },
}

impl Syscall {
    /// The operation kind for tracing.
    pub fn op(&self) -> OpKind {
        match self {
            Syscall::Getenv { .. } => OpKind::Getenv,
            Syscall::ReadArg { .. } => OpKind::ReadArg,
            Syscall::InputBind { .. } => OpKind::InputBind,
            Syscall::ReadFile { .. } => OpKind::ReadFile,
            Syscall::WriteFile { .. } => OpKind::CreateFile,
            Syscall::CreateExcl { .. } => OpKind::CreateExcl,
            Syscall::AppendFile { .. } => OpKind::WriteFile,
            Syscall::Unlink { .. } => OpKind::Delete,
            Syscall::Mkdir { .. } => OpKind::Mkdir,
            Syscall::Chdir { .. } => OpKind::Chdir,
            Syscall::StatPath { .. } | Syscall::LstatPath { .. } => OpKind::Stat,
            Syscall::SymlinkCreate { .. } => OpKind::Symlink,
            Syscall::Readlink { .. } => OpKind::Readlink,
            Syscall::Rename { .. } => OpKind::Rename,
            Syscall::Chmod { .. } => OpKind::Chmod,
            Syscall::Chown { .. } => OpKind::Chown,
            Syscall::ListDir { .. } => OpKind::ListDir,
            Syscall::Exec { .. } => OpKind::Exec,
            Syscall::Print { .. } => OpKind::Print,
            Syscall::RegRead { .. } => OpKind::RegRead,
            Syscall::RegWrite { .. } => OpKind::RegWrite,
            Syscall::RegDelete { .. } => OpKind::RegDelete,
            Syscall::NetConnect { .. } => OpKind::NetConnect,
            Syscall::NetSend { .. } => OpKind::NetSend,
            Syscall::NetRecv { .. } => OpKind::NetRecv,
            Syscall::DnsResolve { .. } => OpKind::DnsResolve,
            Syscall::ProcRecv { .. } => OpKind::ProcRecv,
        }
    }

    /// The environment object the call touches, for tracing.
    pub fn object(&self) -> ObjectRef {
        match self {
            Syscall::Getenv { name, .. } => ObjectRef::EnvVar(name.clone()),
            Syscall::ReadArg { .. } => ObjectRef::Args,
            Syscall::InputBind { entity, .. } => ObjectRef::Value(entity.clone()),
            Syscall::ReadFile { path }
            | Syscall::WriteFile { path, .. }
            | Syscall::CreateExcl { path, .. }
            | Syscall::AppendFile { path, .. }
            | Syscall::Unlink { path }
            | Syscall::Mkdir { path, .. }
            | Syscall::Chdir { path }
            | Syscall::StatPath { path }
            | Syscall::LstatPath { path }
            | Syscall::Readlink { path }
            | Syscall::Chmod { path, .. }
            | Syscall::Chown { path, .. }
            | Syscall::ListDir { path } => ObjectRef::File(path.path.clone()),
            Syscall::SymlinkCreate { link, .. } => ObjectRef::File(link.path.clone()),
            Syscall::Rename { from, .. } => ObjectRef::File(from.path.clone()),
            Syscall::Exec { program, .. } => ObjectRef::File(program.path.clone()),
            Syscall::Print { .. } => ObjectRef::Terminal,
            Syscall::RegRead { key, value, .. }
            | Syscall::RegWrite { key, value, .. }
            | Syscall::RegDelete { key, value } => ObjectRef::RegValue(key.clone(), value.clone()),
            Syscall::NetConnect { host, port } => ObjectRef::Service(host.clone(), *port),
            Syscall::NetSend { host, port, .. } => ObjectRef::Service(host.clone(), *port),
            Syscall::NetRecv { port, .. } => ObjectRef::NetPort(*port),
            Syscall::DnsResolve { host, .. } => ObjectRef::Host(host.clone()),
            Syscall::ProcRecv { channel, .. } => ObjectRef::IpcChannel(channel.clone()),
        }
    }

    /// The input semantics the call declares, if any.
    pub fn semantic(&self) -> Option<InputSemantic> {
        match self {
            Syscall::Getenv { semantic, .. }
            | Syscall::ReadArg { semantic, .. }
            | Syscall::InputBind { semantic, .. }
            | Syscall::RegRead { semantic, .. }
            | Syscall::NetRecv { semantic, .. }
            | Syscall::DnsResolve { semantic, .. }
            | Syscall::ProcRecv { semantic, .. } => Some(*semantic),
            _ => None,
        }
    }
}

/// Outcome of an executed program resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutcome {
    /// Physical path of the resolved binary.
    pub resolved: String,
    /// Owner of the binary.
    pub owner: Uid,
}

/// The value a syscall produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SysReturn {
    /// No value.
    Unit,
    /// A (labeled) data payload.
    Payload(Data),
    /// Plain text (e.g. a symlink target).
    Text(String),
    /// File metadata.
    Meta(Stat),
    /// Directory entry names.
    Names(Vec<String>),
    /// A received message.
    Delivery(Message),
    /// An exec resolution.
    Launched(ExecOutcome),
}

/// One interaction point as seen by the hook: the static site plus dynamic
/// position in the trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionRef {
    /// The process issuing the call.
    pub pid: crate::process::Pid,
    /// The static site.
    pub site: SiteId,
    /// Global sequence number.
    pub seq: usize,
    /// Occurrence index of this site (0-based).
    pub occurrence: usize,
    /// Operation kind.
    pub op: OpKind,
    /// Environment object.
    pub object: ObjectRef,
    /// Input semantics, if any.
    pub semantic: Option<InputSemantic>,
}

/// The fault-injection hook. Installed on an [`Os`] before a run; the
/// dispatcher calls `before` ahead of executing each syscall and `after`
/// with its result. Implementations mutate the environment (`before`, for
/// direct faults) or the result (`after`, for indirect faults).
pub trait Interceptor: Send + Sync {
    /// Called before the syscall executes. `call` is read-only: direct
    /// faults perturb the *environment*, never the application's request.
    fn before(&mut self, os: &mut Os, point: &InteractionRef, call: &Syscall);

    /// Called after the syscall executes, with the mutable result.
    fn after(&mut self, os: &mut Os, point: &InteractionRef, result: &mut SysResult<SysReturn>);
}

/// Collects the union of labels across an argument vector.
pub fn arg_labels(args: &[Data]) -> BTreeSet<Label> {
    let mut out = BTreeSet::new();
    for a in args {
        out.extend(a.labels().iter().cloned());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_object_semantic_are_consistent() {
        let c = Syscall::Getenv {
            name: "PATH".into(),
            semantic: InputSemantic::EnvPathList,
        };
        assert_eq!(c.op(), OpKind::Getenv);
        assert_eq!(c.object(), ObjectRef::EnvVar("PATH".into()));
        assert_eq!(c.semantic(), Some(InputSemantic::EnvPathList));

        let w = Syscall::WriteFile {
            path: "/tmp/x".into(),
            data: Data::from("d"),
            mode: 0o644,
        };
        assert_eq!(w.op(), OpKind::CreateFile);
        assert_eq!(w.object(), ObjectRef::File("/tmp/x".into()));
        assert_eq!(w.semantic(), None);
    }

    #[test]
    fn input_ops_declare_semantics() {
        let calls: Vec<Syscall> = vec![
            Syscall::ReadArg {
                index: 0,
                semantic: InputSemantic::UserFileName,
            },
            Syscall::RegRead {
                key: "K".into(),
                value: "v".into(),
                semantic: InputSemantic::FsFileName,
            },
            Syscall::NetRecv {
                port: 79,
                semantic: InputSemantic::NetPacket,
            },
            Syscall::DnsResolve {
                host: "h".into(),
                semantic: InputSemantic::NetDnsReply,
            },
            Syscall::ProcRecv {
                channel: "c".into(),
                semantic: InputSemantic::ProcMessage,
            },
        ];
        for c in calls {
            assert!(c.semantic().is_some(), "{c:?} should declare a semantic");
            assert!(c.op().is_input(), "{c:?} should be an input op");
        }
    }

    #[test]
    fn arg_label_union() {
        let a = Data::from("x");
        let b = Data::from("y").with_label(Label::Untrusted { source: "s".into() });
        let labels = arg_labels(&[a, b]);
        assert_eq!(labels.len(), 1);
    }
}
