//! The sandbox operating system: one world, one process under test.
//!
//! [`Os`] owns every substrate — file system, users, processes, network,
//! registry — plus the audit log, the execution trace, and the optional
//! fault-injection [`Interceptor`]. Applications interact with the world
//! exclusively through [`Os::syscall`] (or its typed `sys_*` wrappers), so
//! every environment interaction is traced, hookable, and audited.
//!
//! `Os` is `Clone` (the interceptor is not carried over): campaigns snapshot
//! a pristine world once and clone it per injected run, which makes every
//! run independent and deterministic. The clone is **copy-on-write**: the
//! file system, registry and network substrates share their storage with
//! the pristine world until the run actually mutates them, so per-fault
//! setup costs O(touched state) instead of O(world). [`Os::deep_clone`]
//! materializes a fully independent world when one is needed.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::audit::{AuditEvent, AuditLog, SinkKind, WriteInfo};
use crate::buffer::{CopyDiscipline, CopyOutcome, FixedBuf};
use crate::cred::{Credentials, Gid, Uid, UserDb};
use crate::data::{Data, Label, PathArg};
use crate::error::{SysError, SysResult};
use crate::fs::{FileTag, Stat, Vfs};
use crate::intern::PathSym;
use crate::mode::{Access, Mode};
use crate::net::{Message, Network};
use crate::path;
use crate::process::{Pid, ProcessTable};
use crate::registry::Registry;
use crate::syscall::{arg_labels, ExecOutcome, InteractionRef, Interceptor, SysReturn, Syscall};
use crate::syserr;
use crate::trace::{InputSemantic, SiteId, Trace};

/// Scenario metadata: who the invoker and the hypothetical attacker are,
/// and which objects concrete perturbations should aim at. The fault
/// catalog parameterizes its injections from this (e.g. "replace the file
/// with a symlink to *the secret target*").
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioMeta {
    /// Real uid of the user who runs the application under test.
    pub invoker: Uid,
    /// The invoker's primary group.
    pub invoker_gid: Gid,
    /// Uid of the hypothetical attacker perturbations impersonate.
    pub attacker: Uid,
    /// The attacker's primary group.
    pub attacker_gid: Gid,
    /// Directory the attacker controls.
    pub attacker_home: String,
    /// Attacker-controlled directory suitable for `PATH` insertion.
    pub untrusted_dir: String,
    /// Confidentiality target for read-side symlink swaps (`/etc/shadow`).
    pub secret_target: String,
    /// Integrity target for write-side symlink swaps (`/etc/passwd`).
    pub integrity_target: String,
    /// A protected directory fresh files should not appear in.
    pub protected_dir: String,
    /// A system-critical file (deletion/replacement breaks the system) —
    /// the target registry-value perturbations point privileged modules at.
    pub critical_target: String,
    /// Host trusted by network applications.
    pub trusted_host: String,
    /// Host the attacker controls.
    pub attacker_host: String,
}

impl Default for ScenarioMeta {
    fn default() -> Self {
        ScenarioMeta {
            invoker: Uid(1001),
            invoker_gid: Gid(100),
            attacker: Uid(6666),
            attacker_gid: Gid(666),
            attacker_home: "/home/evil".to_string(),
            untrusted_dir: "/home/evil/bin".to_string(),
            secret_target: "/etc/shadow".to_string(),
            integrity_target: "/etc/passwd".to_string(),
            protected_dir: "/etc/cron.d".to_string(),
            critical_target: "/etc/system.conf".to_string(),
            trusted_host: "trusted.cs.example.edu".to_string(),
            attacker_host: "evil.example.net".to_string(),
        }
    }
}

/// The sandbox world.
pub struct Os {
    /// The virtual file system.
    pub fs: Vfs,
    /// Known accounts.
    pub users: UserDb,
    /// Running (and finished) processes.
    pub procs: ProcessTable,
    /// The network substrate.
    pub net: Network,
    /// The NT-style registry.
    pub registry: Registry,
    /// The audit log of the current run.
    pub audit: AuditLog,
    /// The execution trace of the current run.
    pub trace: Trace,
    /// Scenario metadata for fault parameterization and the oracle.
    pub scenario: ScenarioMeta,
    /// Physical paths of files created by this run (oracle support: a
    /// program re-writing its own fresh files is not an integrity problem).
    created_paths: BTreeSet<PathSym>,
    interceptor: Option<Box<dyn Interceptor>>,
}

impl Clone for Os {
    /// Snapshots the whole world state copy-on-write: the file system,
    /// registry and network tables stay shared with `self` until either
    /// world mutates them. The interceptor is deliberately *not* cloned: a
    /// cloned world starts unhooked.
    fn clone(&self) -> Self {
        Os {
            fs: self.fs.clone(),
            users: self.users.clone(),
            procs: self.procs.clone(),
            net: self.net.clone(),
            registry: self.registry.clone(),
            audit: self.audit.clone(),
            trace: self.trace.clone(),
            scenario: self.scenario.clone(),
            created_paths: self.created_paths.clone(),
            interceptor: None,
        }
    }
}

impl fmt::Debug for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Os")
            .field("inodes", &self.fs.inode_count())
            .field("users", &self.users.len())
            .field("procs", &self.procs.len())
            .field("audit_events", &self.audit.len())
            .field("trace_events", &self.trace.len())
            .field("hooked", &self.interceptor.is_some())
            .finish()
    }
}

impl Default for Os {
    fn default() -> Self {
        Self::new()
    }
}

impl Os {
    /// A world with an empty file system and default scenario metadata.
    pub fn new() -> Self {
        Os::with_scenario(ScenarioMeta::default())
    }

    /// A world with explicit scenario metadata.
    pub fn with_scenario(scenario: ScenarioMeta) -> Self {
        Os {
            fs: Vfs::new(),
            users: UserDb::new(),
            procs: ProcessTable::new(),
            net: Network::new(),
            registry: Registry::new(),
            audit: AuditLog::new(),
            trace: Trace::new(),
            scenario,
            created_paths: BTreeSet::new(),
            interceptor: None,
        }
    }

    /// A fully materialized copy sharing no substrate storage with `self` —
    /// the pre-copy-on-write per-run setup cost. Kept for snapshot
    /// equivalence tests and the deep-clone-vs-snapshot benches; campaign
    /// code uses the cheap [`Clone`] snapshot.
    pub fn deep_clone(&self) -> Os {
        Os {
            fs: self.fs.deep_clone(),
            users: self.users.clone(),
            procs: self.procs.clone(),
            net: self.net.deep_clone(),
            registry: self.registry.deep_clone(),
            audit: self.audit.clone(),
            trace: self.trace.clone(),
            scenario: self.scenario.clone(),
            created_paths: self.created_paths.clone(),
            interceptor: None,
        }
    }

    /// Physical paths this world has recorded as created by its own run
    /// (oracle support: a program re-writing its own fresh files is not an
    /// integrity problem). A pristine world has none; world fingerprints
    /// include the set so a non-pristine world can never alias a pristine
    /// one.
    pub fn created_paths(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.created_paths.iter().map(crate::intern::PathSym::as_str)
    }

    /// Installs the fault-injection hook for the next run.
    pub fn set_interceptor(&mut self, hook: Box<dyn Interceptor>) {
        self.interceptor = Some(hook);
    }

    /// Removes and returns the hook.
    pub fn take_interceptor(&mut self) -> Option<Box<dyn Interceptor>> {
        self.interceptor.take()
    }

    /// Whether a hook is installed.
    pub fn is_hooked(&self) -> bool {
        self.interceptor.is_some()
    }

    /// Credentials of the bare invoker (no program privilege), used by the
    /// oracle's "could the real user have done this?" questions.
    pub fn invoker_cred(&self) -> Credentials {
        Credentials::user(self.scenario.invoker, self.scenario.invoker_gid)
    }

    /// True when files owned by `owner` could be attacker-controlled from
    /// the invoker's standpoint: neither root's nor the invoker's.
    pub fn untrusted_owner(&self, owner: Uid) -> bool {
        !owner.is_root() && owner != self.scenario.invoker
    }

    /// Spawns a process for `invoker` running `program`.
    ///
    /// When `program` names a file whose mode has the setuid (setgid) bit,
    /// the process's effective uid (gid) becomes the file's owner (group) —
    /// the SUID semantics every case study in the paper depends on.
    ///
    /// # Errors
    ///
    /// `EINVAL` for an unknown user, `EACCES` when the invoker may not
    /// execute the program, plus path-resolution errors for `cwd`.
    pub fn spawn(
        &mut self,
        invoker: Uid,
        program: Option<&str>,
        args: Vec<String>,
        env: BTreeMap<String, String>,
        cwd: &str,
    ) -> SysResult<Pid> {
        let user = self
            .users
            .get(invoker)
            .ok_or_else(|| syserr!(Einval, "unknown user {invoker}"))?;
        let mut cred = Credentials::user(user.uid, user.gid);
        if let Some(p) = program {
            let st = self.fs.stat(p, None)?;
            if !st.mode.grants(st.owner, st.group, &cred, Access::Exec) {
                return Err(syserr!(Eacces, "cannot execute {p}"));
            }
            if st.mode.is_setuid() {
                cred = cred.with_euid(st.owner);
            }
            if st.mode.is_setgid() {
                cred = cred.with_egid(st.group);
            }
        }
        let w = self.fs.walk(cwd, true, None)?;
        if !self.fs.inode(w.id)?.is_dir() {
            return Err(syserr!(Enotdir, "{cwd}"));
        }
        Ok(self.procs.insert(cred, w.physical.to_string(), w.id, 0o022, env, args))
    }

    /// Records a process's exit status.
    pub fn set_exit(&mut self, pid: Pid, code: i32) {
        if let Ok(p) = self.procs.get_mut(pid) {
            p.exit = Some(code);
        }
    }

    /// The captured stdout of a process.
    pub fn stdout_text(&self, pid: Pid) -> String {
        self.procs
            .get(pid)
            .map(super::process::Process::stdout_text)
            .unwrap_or_default()
    }

    /// Copies data into a fixed buffer under the given discipline, raising
    /// a `MemoryCorruption` audit event on an unchecked overflow.
    pub fn mem_copy(&mut self, pid: Pid, buf: &mut FixedBuf, data: &Data, discipline: CopyDiscipline) -> CopyOutcome {
        let out = buf.copy_from(data, discipline);
        if let CopyOutcome::Overflowed { attempted } = out {
            let by = self.procs.get(pid).map_or_else(|_| Credentials::root(), |p| p.cred);
            self.audit.push(AuditEvent::MemoryCorruption {
                buffer: buf.name().to_string(),
                capacity: buf.capacity(),
                attempted,
                by,
            });
        }
        out
    }

    /// Declares a scenario invariant outcome (a `Custom` audit event).
    pub fn emit_custom(&mut self, rule: impl Into<String>, violated: bool, detail: impl Into<String>) {
        self.audit.push(AuditEvent::Custom {
            rule: rule.into(),
            violated,
            detail: detail.into(),
        });
    }

    // ------------------------------------------------------------------
    // The dispatcher
    // ------------------------------------------------------------------

    /// Executes one syscall for `pid` at interaction site `site`.
    ///
    /// The call is recorded in the execution trace, the interceptor's
    /// `before` hook runs (direct faults), the call is dispatched, and the
    /// `after` hook runs on the result (indirect faults).
    ///
    /// # Errors
    ///
    /// Whatever the underlying operation produces, plus `EAGAIN` once the
    /// process's syscall budget is exhausted.
    pub fn syscall(&mut self, pid: Pid, site: impl Into<SiteId>, call: Syscall) -> SysResult<SysReturn> {
        self.procs.get_mut(pid)?.spend_budget()?;
        let site = site.into();
        let op = call.op();
        let mut object = call.object();
        // Record file objects by their cwd-resolved name so perturbation
        // planning targets what the interaction actually touches. Bare
        // program names stay bare: an exec without `/` resolves through a
        // search path, not the working directory.
        if let crate::trace::ObjectRef::File(p) = &object {
            let bare_exec = op == crate::trace::OpKind::Exec && !p.contains('/');
            if !bare_exec {
                if let Ok(abs) = self.abs(pid, p) {
                    object = crate::trace::ObjectRef::File(abs);
                }
            }
        }
        let semantic = call.semantic();
        let occurrence = self.trace.record(site.clone(), op, object.clone(), semantic);
        let seq = self.trace.len() - 1;
        let point = InteractionRef {
            pid,
            site,
            seq,
            occurrence,
            op,
            object,
            semantic,
        };

        let mut hook = self.interceptor.take();
        if let Some(h) = hook.as_mut() {
            h.before(self, &point, &call);
        }
        let mut result = self.dispatch(pid, call);
        self.trace.set_outcome(seq, result.is_ok());
        if let Some(h) = hook.as_mut() {
            h.after(self, &point, &mut result);
        }
        self.interceptor = hook;
        result
    }

    fn dispatch(&mut self, pid: Pid, call: Syscall) -> SysResult<SysReturn> {
        match call {
            Syscall::Getenv { name, .. } => self.do_getenv(pid, &name),
            Syscall::ReadArg { index, .. } => self.do_read_arg(pid, index),
            Syscall::InputBind { value, .. } => Ok(SysReturn::Payload(value)),
            Syscall::ReadFile { path } => self.do_read_file(pid, &path),
            Syscall::WriteFile { path, data, mode } => self.do_write_file(pid, &path, &data, mode),
            Syscall::CreateExcl { path, mode } => self.do_create_excl(pid, &path, mode),
            Syscall::AppendFile { path, data, mode } => self.do_append(pid, &path, &data, mode),
            Syscall::Unlink { path } => self.do_unlink(pid, &path),
            Syscall::Mkdir { path, mode } => self.do_mkdir(pid, &path, mode),
            Syscall::Chdir { path } => self.do_chdir(pid, &path),
            Syscall::StatPath { path } => self.do_stat(pid, &path, true),
            Syscall::LstatPath { path } => self.do_stat(pid, &path, false),
            Syscall::SymlinkCreate { target, link } => self.do_symlink(pid, &target, &link),
            Syscall::Readlink { path } => self.do_readlink(pid, &path),
            Syscall::Rename { from, to } => self.do_rename(pid, &from, &to),
            Syscall::Chmod { path, mode } => self.do_chmod(pid, &path, mode),
            Syscall::Chown { path, owner } => self.do_chown(pid, &path, owner),
            Syscall::ListDir { path } => self.do_list_dir(pid, &path),
            Syscall::Exec {
                program,
                args,
                path_list,
            } => self.do_exec(pid, &program, &args, path_list.as_ref()),
            Syscall::Print { data } => self.do_print(pid, data),
            Syscall::RegRead { key, value, .. } => self.do_reg_read(&key, &value),
            Syscall::RegWrite { key, value, data } => self.do_reg_write(pid, &key, &value, data),
            Syscall::RegDelete { key, value } => self.do_reg_delete(pid, &key, &value),
            Syscall::NetConnect { host, port } => self.do_net_connect(&host, port),
            Syscall::NetSend { host, port, data } => self.do_net_send(pid, &host, port, data),
            Syscall::NetRecv { port, .. } => self.do_net_recv(port),
            Syscall::DnsResolve { host, .. } => self.do_dns(&host),
            Syscall::ProcRecv { channel, .. } => self.do_proc_recv(&channel),
        }
    }

    // ------------------------------------------------------------------
    // Handlers
    // ------------------------------------------------------------------

    fn cred_of(&self, pid: Pid) -> SysResult<Credentials> {
        Ok(self.procs.get(pid)?.cred)
    }

    fn abs(&self, pid: Pid, p: &str) -> SysResult<String> {
        if path::is_absolute(p) {
            Ok(p.to_string())
        } else {
            Ok(path::join(&self.procs.get(pid)?.cwd, p))
        }
    }

    /// Taint on a path argument, including the cwd taint for relative paths
    /// (a relative operation lands wherever the tainted cwd pointed).
    fn effective_taint(&self, pid: Pid, arg: &PathArg) -> BTreeSet<Label> {
        let mut taint = arg.taint.clone();
        if !path::is_absolute(&arg.path) {
            if let Ok(p) = self.procs.get(pid) {
                taint.extend(p.cwd_taint.iter().cloned());
            }
        }
        taint
    }

    fn attach_file_labels(&self, data: &mut Data, st: &Stat, physical: &str) {
        let invoker = self.invoker_cred();
        let may_read = st.mode.grants(st.owner, st.group, &invoker, Access::Read);
        if !may_read || st.tags.contains(&FileTag::Secret) {
            data.add_label(Label::Secret {
                path: physical.to_string(),
                invoker_may_read: may_read,
            });
        }
        if self.untrusted_owner(st.owner) || st.mode.world_writable() {
            data.add_label(Label::Untrusted {
                source: format!("file:{physical}"),
            });
        }
    }

    fn parent_info(&self, physical: &str) -> (BTreeSet<FileTag>, bool) {
        let invoker = self.invoker_cred();
        if let Some(pp) = path::parent(physical) {
            if let Ok(st) = self.fs.stat(&pp, None) {
                let could = st.mode.grants(st.owner, st.group, &invoker, Access::Write);
                return (st.tags, could);
            }
        }
        (BTreeSet::new(), false)
    }

    fn do_getenv(&mut self, pid: Pid, name: &str) -> SysResult<SysReturn> {
        let p = self.procs.get(pid)?;
        p.env
            .get(name)
            .map(|v| SysReturn::Payload(Data::from(v.clone())))
            .ok_or_else(|| syserr!(Enoent, "environment variable {name}"))
    }

    fn do_read_arg(&mut self, pid: Pid, index: usize) -> SysResult<SysReturn> {
        let p = self.procs.get(pid)?;
        p.args
            .get(index)
            .map(|a| SysReturn::Payload(Data::from(a.clone())))
            .ok_or_else(|| syserr!(Einval, "missing argument {index}"))
    }

    fn do_read_file(&mut self, pid: Pid, path: &PathArg) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        let w = self.fs.open_read(&abs, &cred)?;
        let st = Stat::of(self.fs.inode(w.id)?);
        let mut data = self.fs.read(w.id)?;
        self.attach_file_labels(&mut data, &st, &w.physical);
        let taint = self.effective_taint(pid, path);
        self.audit.push(AuditEvent::FileRead {
            path: w.physical,
            tags: st.tags,
            path_taint: taint,
            by: cred,
        });
        Ok(SysReturn::Payload(data))
    }

    fn pre_write_state(&self, abs: &str) -> (bool, Option<Uid>, bool, BTreeSet<FileTag>) {
        let invoker = self.invoker_cred();
        match self.fs.walk(abs, true, None) {
            Ok(w) => match self.fs.inode(w.id) {
                Ok(ino) if ino.is_file() => (
                    true,
                    Some(ino.owner),
                    ino.mode.grants(ino.owner, ino.group, &invoker, Access::Write),
                    ino.tags.clone(),
                ),
                _ => (true, None, false, BTreeSet::new()),
            },
            Err(_) => (false, None, false, BTreeSet::new()),
        }
    }

    fn push_write_event(
        &mut self,
        physical: PathSym,
        pre: (bool, Option<Uid>, bool, BTreeSet<FileTag>),
        path_taint: BTreeSet<Label>,
        data: &Data,
        cred: Credentials,
    ) {
        let (existed_before, owner_before, invoker_could_write, target_tags) = pre;
        let created_by_self = self.created_paths.contains(&physical);
        if !existed_before {
            self.created_paths.insert(physical);
        }
        let (parent_tags, invoker_could_write_parent) = self.parent_info(&physical);
        let invoker = self.invoker_cred();
        let invoker_could_read_after = self
            .fs
            .stat(&physical, None)
            .is_ok_and(|st| st.mode.grants(st.owner, st.group, &invoker, Access::Read));
        self.audit.push(AuditEvent::FileWrite(WriteInfo {
            path: physical,
            existed_before,
            owner_before,
            invoker_could_write,
            target_tags,
            parent_tags,
            invoker_could_write_parent,
            invoker_could_read_after,
            created_by_self,
            path_taint,
            data_labels: data.labels().clone(),
            by: cred,
        }));
    }

    fn do_write_file(&mut self, pid: Pid, path: &PathArg, data: &Data, mode: u16) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let umask = self.procs.get(pid)?.umask;
        let abs = self.abs(pid, &path.path)?;
        let taint = self.effective_taint(pid, path);
        let pre = self.pre_write_state(&abs);
        let (w, _) = self.fs.creat(&abs, Mode::new(mode), &cred, umask)?;
        self.fs.write(w.id, data, false)?;
        self.push_write_event(w.physical, pre, taint, data, cred);
        Ok(SysReturn::Unit)
    }

    fn do_create_excl(&mut self, pid: Pid, path: &PathArg, mode: u16) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let umask = self.procs.get(pid)?.umask;
        let abs = self.abs(pid, &path.path)?;
        let taint = self.effective_taint(pid, path);
        let w = self.fs.create_excl(&abs, Mode::new(mode), &cred, umask)?;
        let pre = (false, None, false, BTreeSet::new());
        self.push_write_event(w.physical, pre, taint, &Data::new(), cred);
        Ok(SysReturn::Unit)
    }

    fn do_append(&mut self, pid: Pid, path: &PathArg, data: &Data, mode: u16) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let umask = self.procs.get(pid)?.umask;
        let abs = self.abs(pid, &path.path)?;
        let taint = self.effective_taint(pid, path);
        let pre = self.pre_write_state(&abs);
        let physical = if pre.0 {
            // Existing target: append with a write-permission check.
            let w = self.fs.walk(&abs, true, Some(&cred))?;
            let ino = self.fs.inode(w.id)?;
            if !ino.mode.grants(ino.owner, ino.group, &cred, Access::Write) {
                return Err(syserr!(Eacces, "{abs}"));
            }
            self.fs.write(w.id, data, true)?;
            w.physical
        } else {
            let (w, _) = self.fs.creat(&abs, Mode::new(mode), &cred, umask)?;
            self.fs.write(w.id, data, false)?;
            w.physical
        };
        self.push_write_event(physical, pre, taint, data, cred);
        Ok(SysReturn::Unit)
    }

    fn do_unlink(&mut self, pid: Pid, path: &PathArg) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        let st = self.fs.lstat(&abs, None)?;
        let pw = self.fs.walk_parent(&abs, None)?;
        let physical = pw.dir_physical.join(&pw.name);
        let invoker = self.invoker_cred();
        let dirst = Stat::of(self.fs.inode(pw.dir)?);
        let mut could = dirst.mode.grants(dirst.owner, dirst.group, &invoker, Access::Write);
        if could
            && dirst.mode.is_sticky()
            && !invoker.euid.is_root()
            && invoker.euid != st.owner
            && invoker.euid != dirst.owner
        {
            could = false;
        }
        let taint = self.effective_taint(pid, path);
        self.fs.unlink(&abs, &cred)?;
        self.created_paths.remove(&physical);
        self.audit.push(AuditEvent::FileDelete {
            path: physical,
            owner: st.owner,
            tags: st.tags,
            path_taint: taint,
            invoker_could_delete: could,
            by: cred,
        });
        Ok(SysReturn::Unit)
    }

    fn do_mkdir(&mut self, pid: Pid, path: &PathArg, mode: u16) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let umask = self.procs.get(pid)?.umask;
        let abs = self.abs(pid, &path.path)?;
        self.fs.mkdir(&abs, Mode::new(mode), &cred, umask)?;
        Ok(SysReturn::Unit)
    }

    fn do_chdir(&mut self, pid: Pid, path: &PathArg) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        let w = self.fs.walk(&abs, true, Some(&cred))?;
        let ino = self.fs.inode(w.id)?;
        if !ino.is_dir() {
            return Err(syserr!(Enotdir, "{abs}"));
        }
        if !ino.mode.grants(ino.owner, ino.group, &cred, Access::Exec) {
            return Err(syserr!(Eacces, "{abs}"));
        }
        let owner = ino.owner;
        let taint = self.effective_taint(pid, path);
        {
            let p = self.procs.get_mut(pid)?;
            p.cwd = w.physical.to_string();
            p.cwd_inode = w.id;
            p.cwd_taint = taint.clone();
        }
        self.audit.push(AuditEvent::Chdir {
            path: w.physical,
            owner,
            path_taint: taint,
            by: cred,
        });
        Ok(SysReturn::Unit)
    }

    fn do_stat(&mut self, pid: Pid, path: &PathArg, follow: bool) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        let st = if follow {
            self.fs.stat(&abs, Some(&cred))?
        } else {
            self.fs.lstat(&abs, Some(&cred))?
        };
        Ok(SysReturn::Meta(st))
    }

    fn do_symlink(&mut self, pid: Pid, target: &str, link: &PathArg) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &link.path)?;
        self.fs.symlink(target, &abs, &cred)?;
        Ok(SysReturn::Unit)
    }

    fn do_readlink(&mut self, pid: Pid, path: &PathArg) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        Ok(SysReturn::Text(self.fs.readlink(&abs, &cred)?))
    }

    fn do_rename(&mut self, pid: Pid, from: &PathArg, to: &PathArg) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let fa = self.abs(pid, &from.path)?;
        let ta = self.abs(pid, &to.path)?;
        self.fs.rename(&fa, &ta, &cred)?;
        Ok(SysReturn::Unit)
    }

    fn do_chmod(&mut self, pid: Pid, path: &PathArg, mode: u16) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        self.fs.chmod(&abs, Mode::new(mode), &cred)?;
        Ok(SysReturn::Unit)
    }

    fn do_chown(&mut self, pid: Pid, path: &PathArg, owner: Uid) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        self.fs.chown(&abs, owner, cred.egid, &cred)?;
        Ok(SysReturn::Unit)
    }

    fn do_list_dir(&mut self, pid: Pid, path: &PathArg) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let abs = self.abs(pid, &path.path)?;
        Ok(SysReturn::Names(self.fs.list_dir(&abs, &cred)?))
    }

    fn do_exec(
        &mut self,
        pid: Pid,
        program: &PathArg,
        args: &[Data],
        path_list: Option<&Data>,
    ) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let mut taint = program.taint.clone();
        let w = if program.path.contains('/') {
            let abs = self.abs(pid, &program.path)?;
            self.fs.walk(&abs, true, Some(&cred))?
        } else {
            let pl = path_list.ok_or_else(|| syserr!(Einval, "bare program `{}` without search path", program.path))?;
            taint.extend(pl.labels().iter().cloned());
            let mut found = None;
            for dir in pl.text().split(':').filter(|s| !s.is_empty()) {
                let cand = path::join(dir, &program.path);
                let abs = self.abs(pid, &cand)?;
                if let Ok(w) = self.fs.walk(&abs, true, Some(&cred)) {
                    if let Ok(ino) = self.fs.inode(w.id) {
                        if ino.is_file() && ino.mode.any_exec() {
                            found = Some(w);
                            break;
                        }
                    }
                }
            }
            found.ok_or_else(|| syserr!(Enoent, "{} not found in search path", program.path))?
        };
        let ino = self.fs.inode(w.id)?;
        if !ino.is_file() {
            return Err(syserr!(Eacces, "{} is not executable", w.physical));
        }
        if !ino.mode.grants(ino.owner, ino.group, &cred, Access::Exec) {
            return Err(syserr!(Eacces, "{}", w.physical));
        }
        let owner = ino.owner;
        let world_writable = ino.mode.world_writable();
        let dir_untrusted = {
            match path::parent(&w.physical) {
                Some(pp) => match self.fs.stat(&pp, None) {
                    Ok(pst) => self.untrusted_owner(pst.owner) || (pst.mode.world_writable() && !pst.mode.is_sticky()),
                    Err(_) => false,
                },
                None => false,
            }
        };
        self.audit.push(AuditEvent::Exec {
            requested: program.path.clone(),
            resolved: w.physical,
            owner,
            world_writable,
            dir_untrusted,
            path_taint: taint,
            arg_labels: arg_labels(args),
            by: cred,
        });
        Ok(SysReturn::Launched(ExecOutcome {
            resolved: w.physical.to_string(),
            owner,
        }))
    }

    fn do_print(&mut self, pid: Pid, data: Data) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let labels = data.labels().clone();
        self.procs.get_mut(pid)?.stdout.push(data);
        self.audit.push(AuditEvent::Emit {
            sink: SinkKind::Stdout,
            labels,
            by: cred,
        });
        Ok(SysReturn::Unit)
    }

    fn do_reg_read(&mut self, key: &str, value: &str) -> SysResult<SysReturn> {
        let (text, world_writable) = self.registry.get_value(key, value)?;
        let mut data = Data::from(text);
        if world_writable {
            data.add_label(Label::Untrusted {
                source: format!("registry:{key}"),
            });
        }
        Ok(SysReturn::Payload(data))
    }

    fn do_reg_write(&mut self, pid: Pid, key: &str, value: &str, data: String) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        self.registry.set_value(key, value, data, &cred)?;
        self.audit.push(AuditEvent::RegistryWrite {
            key: key.to_string(),
            by: cred,
        });
        Ok(SysReturn::Unit)
    }

    fn do_reg_delete(&mut self, pid: Pid, key: &str, value: &str) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        self.registry.delete_value(key, value, &cred)?;
        self.audit.push(AuditEvent::RegistryDelete {
            key: key.to_string(),
            path_taint: BTreeSet::new(),
            by: cred,
        });
        Ok(SysReturn::Unit)
    }

    fn do_net_connect(&mut self, host: &str, port: u16) -> SysResult<SysReturn> {
        self.net.connect(host, port)?;
        Ok(SysReturn::Unit)
    }

    fn do_net_send(&mut self, pid: Pid, host: &str, port: u16, data: Data) -> SysResult<SysReturn> {
        let cred = self.cred_of(pid)?;
        let labels = data.labels().clone();
        self.net.send(host, port, data);
        self.audit.push(AuditEvent::Emit {
            sink: SinkKind::Network {
                to: format!("{host}:{port}"),
            },
            labels,
            by: cred,
        });
        Ok(SysReturn::Unit)
    }

    fn do_net_recv(&mut self, port: u16) -> SysResult<SysReturn> {
        let mut msg = self
            .net
            .pop_message(port)
            .ok_or_else(|| syserr!(Enomsg, "no message on port {port}"))?;
        if !msg.authentic() {
            msg.data.add_label(Label::Spoofed {
                claimed_from: msg.claimed_from.clone(),
                actual_from: msg.actual_from.clone(),
            });
        }
        if let Some(who) = self.net.socket_shared_with(port) {
            msg.data.add_label(Label::Untrusted {
                source: format!("shared-socket:{who}"),
            });
        }
        self.audit.push(AuditEvent::NetRecv {
            port,
            authentic: msg.authentic(),
            actual_from: msg.actual_from.clone(),
        });
        Ok(SysReturn::Delivery(msg))
    }

    fn do_dns(&mut self, host: &str) -> SysResult<SysReturn> {
        let addr = self.net.resolve(host)?;
        Ok(SysReturn::Payload(Data::from(addr)))
    }

    fn do_proc_recv(&mut self, channel: &str) -> SysResult<SysReturn> {
        let mut msg = self.net.pop_ipc(channel)?;
        if !msg.authentic() {
            msg.data.add_label(Label::Spoofed {
                claimed_from: msg.claimed_from.clone(),
                actual_from: msg.actual_from.clone(),
            });
        }
        if !self.net.ipc_trusted(channel) {
            msg.data.add_label(Label::Untrusted {
                source: format!("ipc:{channel}"),
            });
        }
        Ok(SysReturn::Delivery(msg))
    }
}

// ----------------------------------------------------------------------
// Typed wrappers: ergonomic application-facing API
// ----------------------------------------------------------------------

macro_rules! expect_return {
    ($value:expr, $variant:ident) => {
        match $value {
            SysReturn::$variant(x) => Ok(x),
            other => Err(SysError::new(
                crate::error::Errno::Einval,
                format!("unexpected syscall return {other:?}"),
            )),
        }
    };
}

impl Os {
    /// Reads an environment variable. See [`Syscall::Getenv`].
    pub fn sys_getenv(&mut self, pid: Pid, site: &str, name: &str, semantic: InputSemantic) -> SysResult<Data> {
        let r = self.syscall(
            pid,
            site,
            Syscall::Getenv {
                name: name.to_string(),
                semantic,
            },
        )?;
        expect_return!(r, Payload)
    }

    /// Reads argv\[index\]. See [`Syscall::ReadArg`].
    pub fn sys_arg(&mut self, pid: Pid, site: &str, index: usize, semantic: InputSemantic) -> SysResult<Data> {
        let r = self.syscall(pid, site, Syscall::ReadArg { index, semantic })?;
        expect_return!(r, Payload)
    }

    /// Binds a parsed input value to an internal entity. See [`Syscall::InputBind`].
    pub fn sys_bind(
        &mut self,
        pid: Pid,
        site: &str,
        entity: &str,
        semantic: InputSemantic,
        value: Data,
    ) -> SysResult<Data> {
        let r = self.syscall(
            pid,
            site,
            Syscall::InputBind {
                entity: entity.to_string(),
                semantic,
                value,
            },
        )?;
        expect_return!(r, Payload)
    }

    /// Reads a whole file. See [`Syscall::ReadFile`].
    pub fn sys_read_file(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>) -> SysResult<Data> {
        let r = self.syscall(pid, site, Syscall::ReadFile { path: path.into() })?;
        expect_return!(r, Payload)
    }

    /// Creates-or-truncates and writes a file. See [`Syscall::WriteFile`].
    pub fn sys_write_file(
        &mut self,
        pid: Pid,
        site: &str,
        path: impl Into<PathArg>,
        data: impl Into<Data>,
        mode: u16,
    ) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::WriteFile {
                path: path.into(),
                data: data.into(),
                mode,
            },
        )?;
        Ok(())
    }

    /// Exclusive creation. See [`Syscall::CreateExcl`].
    pub fn sys_create_excl(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>, mode: u16) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::CreateExcl {
                path: path.into(),
                mode,
            },
        )?;
        Ok(())
    }

    /// Appends to a file. See [`Syscall::AppendFile`].
    pub fn sys_append(
        &mut self,
        pid: Pid,
        site: &str,
        path: impl Into<PathArg>,
        data: impl Into<Data>,
        mode: u16,
    ) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::AppendFile {
                path: path.into(),
                data: data.into(),
                mode,
            },
        )?;
        Ok(())
    }

    /// Removes a file. See [`Syscall::Unlink`].
    pub fn sys_unlink(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>) -> SysResult<()> {
        self.syscall(pid, site, Syscall::Unlink { path: path.into() })?;
        Ok(())
    }

    /// Creates a directory. See [`Syscall::Mkdir`].
    pub fn sys_mkdir(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>, mode: u16) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::Mkdir {
                path: path.into(),
                mode,
            },
        )?;
        Ok(())
    }

    /// Changes the working directory. See [`Syscall::Chdir`].
    pub fn sys_chdir(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>) -> SysResult<()> {
        self.syscall(pid, site, Syscall::Chdir { path: path.into() })?;
        Ok(())
    }

    /// `stat`. See [`Syscall::StatPath`].
    pub fn sys_stat(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>) -> SysResult<Stat> {
        let r = self.syscall(pid, site, Syscall::StatPath { path: path.into() })?;
        expect_return!(r, Meta)
    }

    /// `lstat`. See [`Syscall::LstatPath`].
    pub fn sys_lstat(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>) -> SysResult<Stat> {
        let r = self.syscall(pid, site, Syscall::LstatPath { path: path.into() })?;
        expect_return!(r, Meta)
    }

    /// Creates a symlink. See [`Syscall::SymlinkCreate`].
    pub fn sys_symlink(&mut self, pid: Pid, site: &str, target: &str, link: impl Into<PathArg>) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::SymlinkCreate {
                target: target.to_string(),
                link: link.into(),
            },
        )?;
        Ok(())
    }

    /// Reads a symlink target. See [`Syscall::Readlink`].
    pub fn sys_readlink(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>) -> SysResult<String> {
        let r = self.syscall(pid, site, Syscall::Readlink { path: path.into() })?;
        expect_return!(r, Text)
    }

    /// Renames. See [`Syscall::Rename`].
    pub fn sys_rename(
        &mut self,
        pid: Pid,
        site: &str,
        from: impl Into<PathArg>,
        to: impl Into<PathArg>,
    ) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::Rename {
                from: from.into(),
                to: to.into(),
            },
        )?;
        Ok(())
    }

    /// Changes mode bits. See [`Syscall::Chmod`].
    pub fn sys_chmod(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>, mode: u16) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::Chmod {
                path: path.into(),
                mode,
            },
        )?;
        Ok(())
    }

    /// Changes ownership. See [`Syscall::Chown`].
    pub fn sys_chown(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>, owner: Uid) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::Chown {
                path: path.into(),
                owner,
            },
        )?;
        Ok(())
    }

    /// Lists a directory. See [`Syscall::ListDir`].
    pub fn sys_list_dir(&mut self, pid: Pid, site: &str, path: impl Into<PathArg>) -> SysResult<Vec<String>> {
        let r = self.syscall(pid, site, Syscall::ListDir { path: path.into() })?;
        expect_return!(r, Names)
    }

    /// Executes a program. See [`Syscall::Exec`].
    pub fn sys_exec(
        &mut self,
        pid: Pid,
        site: &str,
        program: impl Into<PathArg>,
        args: Vec<Data>,
        path_list: Option<Data>,
    ) -> SysResult<ExecOutcome> {
        let r = self.syscall(
            pid,
            site,
            Syscall::Exec {
                program: program.into(),
                args,
                path_list,
            },
        )?;
        expect_return!(r, Launched)
    }

    /// Prints to stdout. See [`Syscall::Print`].
    pub fn sys_print(&mut self, pid: Pid, site: &str, data: impl Into<Data>) -> SysResult<()> {
        self.syscall(pid, site, Syscall::Print { data: data.into() })?;
        Ok(())
    }

    /// Reads a registry value. See [`Syscall::RegRead`].
    pub fn sys_reg_read(
        &mut self,
        pid: Pid,
        site: &str,
        key: &str,
        value: &str,
        semantic: InputSemantic,
    ) -> SysResult<Data> {
        let r = self.syscall(
            pid,
            site,
            Syscall::RegRead {
                key: key.to_string(),
                value: value.to_string(),
                semantic,
            },
        )?;
        expect_return!(r, Payload)
    }

    /// Writes a registry value. See [`Syscall::RegWrite`].
    pub fn sys_reg_write(&mut self, pid: Pid, site: &str, key: &str, value: &str, data: &str) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::RegWrite {
                key: key.to_string(),
                value: value.to_string(),
                data: data.to_string(),
            },
        )?;
        Ok(())
    }

    /// Deletes a registry value. See [`Syscall::RegDelete`].
    pub fn sys_reg_delete(&mut self, pid: Pid, site: &str, key: &str, value: &str) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::RegDelete {
                key: key.to_string(),
                value: value.to_string(),
            },
        )?;
        Ok(())
    }

    /// Connects to a service. See [`Syscall::NetConnect`].
    pub fn sys_net_connect(&mut self, pid: Pid, site: &str, host: &str, port: u16) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::NetConnect {
                host: host.to_string(),
                port,
            },
        )?;
        Ok(())
    }

    /// Sends a network message. See [`Syscall::NetSend`].
    pub fn sys_net_send(
        &mut self,
        pid: Pid,
        site: &str,
        host: &str,
        port: u16,
        data: impl Into<Data>,
    ) -> SysResult<()> {
        self.syscall(
            pid,
            site,
            Syscall::NetSend {
                host: host.to_string(),
                port,
                data: data.into(),
            },
        )?;
        Ok(())
    }

    /// Receives a network message. See [`Syscall::NetRecv`].
    pub fn sys_net_recv(&mut self, pid: Pid, site: &str, port: u16, semantic: InputSemantic) -> SysResult<Message> {
        let r = self.syscall(pid, site, Syscall::NetRecv { port, semantic })?;
        expect_return!(r, Delivery)
    }

    /// Resolves a host name. See [`Syscall::DnsResolve`].
    pub fn sys_dns(&mut self, pid: Pid, site: &str, host: &str, semantic: InputSemantic) -> SysResult<Data> {
        let r = self.syscall(
            pid,
            site,
            Syscall::DnsResolve {
                host: host.to_string(),
                semantic,
            },
        )?;
        expect_return!(r, Payload)
    }

    /// Receives an IPC message. See [`Syscall::ProcRecv`].
    pub fn sys_proc_recv(
        &mut self,
        pid: Pid,
        site: &str,
        channel: &str,
        semantic: InputSemantic,
    ) -> SysResult<Message> {
        let r = self.syscall(
            pid,
            site,
            Syscall::ProcRecv {
                channel: channel.to_string(),
                semantic,
            },
        )?;
        expect_return!(r, Delivery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OracleSet;

    /// A minimal lpr-like world: root-SUID binary, spool dir, invoker.
    fn world() -> Os {
        let mut os = Os::new();
        os.users.add("root", Uid::ROOT, Gid::ROOT, "/root");
        os.users
            .add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
        os.users
            .add("evil", os.scenario.attacker, os.scenario.attacker_gid, "/home/evil");
        os.fs.mkdir_p("/tmp", Uid::ROOT, Gid::ROOT, Mode::new(0o1777)).unwrap();
        os.fs
            .mkdir_p("/var/spool", Uid::ROOT, Gid::ROOT, Mode::new(0o755))
            .unwrap();
        os.fs
            .mkdir_p(
                "/home/student",
                os.scenario.invoker,
                os.scenario.invoker_gid,
                Mode::new(0o755),
            )
            .unwrap();
        os.fs
            .put_file("/etc/passwd", "root:0:0:", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        os.fs.tag("/etc/passwd", FileTag::Protected).unwrap();
        os.fs
            .put_file("/etc/shadow", "root:HASH:", Uid::ROOT, Gid::ROOT, Mode::new(0o600))
            .unwrap();
        os.fs.tag("/etc/shadow", FileTag::Secret).unwrap();
        os.fs
            .put_file("/usr/bin/lpr", "#!suid", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))
            .unwrap();
        os
    }

    #[test]
    fn spawn_suid_elevates_euid() {
        let mut os = world();
        let pid = os
            .spawn(os.scenario.invoker, Some("/usr/bin/lpr"), vec![], BTreeMap::new(), "/")
            .unwrap();
        let cred = os.procs.get(pid).unwrap().cred;
        assert_eq!(cred.ruid, os.scenario.invoker);
        assert!(cred.euid.is_root());
        assert!(cred.is_elevated());
    }

    #[test]
    fn spawn_without_exec_permission_fails() {
        let mut os = world();
        os.fs.god_chmod("/usr/bin/lpr", Mode::new(0o4700)).unwrap();
        let e = os
            .spawn(os.scenario.invoker, Some("/usr/bin/lpr"), vec![], BTreeMap::new(), "/")
            .unwrap_err();
        assert!(e.is_permission());
    }

    #[test]
    fn clean_suid_spool_write_has_no_violations() {
        let mut os = world();
        let pid = os
            .spawn(os.scenario.invoker, Some("/usr/bin/lpr"), vec![], BTreeMap::new(), "/")
            .unwrap();
        os.sys_write_file(pid, "lpr:create", "/var/spool/job1", "print me", 0o660)
            .unwrap();
        assert!(OracleSet::standard().evaluate_log(&os.audit).is_empty());
    }

    #[test]
    fn symlink_swap_write_is_integrity_violation() {
        let mut os = world();
        // Perturbation: spool file is a symlink to /etc/passwd.
        os.fs.god_symlink("/var/spool/job1", "/etc/passwd").unwrap();
        let pid = os
            .spawn(os.scenario.invoker, Some("/usr/bin/lpr"), vec![], BTreeMap::new(), "/")
            .unwrap();
        os.sys_write_file(pid, "lpr:create", "/var/spool/job1", "evil", 0o660)
            .unwrap();
        let v = OracleSet::standard().evaluate_log(&os.audit);
        assert!(
            v.iter().any(|x| x.kind == crate::policy::ViolationKind::IntegrityWrite),
            "expected integrity violation, got {v:?}"
        );
        // The password file was really clobbered.
        assert_eq!(os.fs.god_read("/etc/passwd").unwrap().text(), "evil");
    }

    #[test]
    fn reading_shadow_and_printing_is_disclosure() {
        let mut os = world();
        let pid = os
            .spawn(os.scenario.invoker, Some("/usr/bin/lpr"), vec![], BTreeMap::new(), "/")
            .unwrap();
        let secret = os.sys_read_file(pid, "app:read", "/etc/shadow").unwrap();
        os.sys_print(pid, "app:print", secret).unwrap();
        let v = OracleSet::standard().evaluate_log(&os.audit);
        assert!(v.iter().any(|x| x.kind == crate::policy::ViolationKind::Disclosure));
    }

    #[test]
    fn exec_via_perturbed_path_is_untrusted_exec() {
        let mut os = world();
        os.fs
            .mkdir_p(
                "/home/evil/bin",
                os.scenario.attacker,
                os.scenario.attacker_gid,
                Mode::new(0o755),
            )
            .unwrap();
        os.fs
            .put_file(
                "/home/evil/bin/tar",
                "#!evil",
                os.scenario.attacker,
                os.scenario.attacker_gid,
                Mode::new(0o755),
            )
            .unwrap();
        os.fs
            .put_file("/usr/bin/tar", "#!tar", Uid::ROOT, Gid::ROOT, Mode::new(0o755))
            .unwrap();
        let pid = os
            .spawn(os.scenario.invoker, Some("/usr/bin/lpr"), vec![], BTreeMap::new(), "/")
            .unwrap();
        // PATH perturbed to put the attacker dir first.
        let path_list = Data::from("/home/evil/bin:/usr/bin");
        let out = os.sys_exec(pid, "app:exec", "tar", vec![], Some(path_list)).unwrap();
        assert_eq!(out.resolved, "/home/evil/bin/tar");
        let v = OracleSet::standard().evaluate_log(&os.audit);
        assert!(v.iter().any(|x| x.kind == crate::policy::ViolationKind::UntrustedExec));
    }

    #[test]
    fn trace_records_sites_and_occurrences() {
        let mut os = world();
        let pid = os
            .spawn(
                os.scenario.invoker,
                Some("/usr/bin/lpr"),
                vec!["a".into(), "b".into()],
                BTreeMap::new(),
                "/",
            )
            .unwrap();
        os.sys_arg(pid, "app:args", 0, InputSemantic::UserFileName).unwrap();
        os.sys_arg(pid, "app:args", 1, InputSemantic::UserFileName).unwrap();
        let sites = os.trace.sites();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].hits, 2);
        assert!(sites[0].has_input());
    }

    #[test]
    fn hook_before_and_after_fire() {
        struct Hook {
            fired_before: shim_sync::sync::Arc<shim_sync::sync::atomic::AtomicUsize>,
        }
        impl Interceptor for Hook {
            fn before(&mut self, _os: &mut Os, _p: &InteractionRef, _c: &Syscall) {
                self.fired_before
                    .fetch_add(1, shim_sync::sync::atomic::Ordering::SeqCst);
            }
            fn after(&mut self, _os: &mut Os, _p: &InteractionRef, result: &mut SysResult<SysReturn>) {
                if let Ok(SysReturn::Payload(d)) = result {
                    d.push_str("-mutated");
                }
            }
        }
        let mut os = world();
        let counter = shim_sync::sync::Arc::new(shim_sync::sync::atomic::AtomicUsize::new(0));
        os.set_interceptor(Box::new(Hook {
            fired_before: counter.clone(),
        }));
        let pid = os
            .spawn(
                os.scenario.invoker,
                None,
                vec![],
                [("USER".to_string(), "student".to_string())].into_iter().collect(),
                "/",
            )
            .unwrap();
        let v = os
            .sys_getenv(pid, "app:getenv", "USER", InputSemantic::EnvValue)
            .unwrap();
        assert_eq!(v.text(), "student-mutated");
        assert_eq!(counter.load(shim_sync::sync::atomic::Ordering::SeqCst), 1);
        assert!(os.is_hooked());
    }

    #[test]
    fn clone_drops_interceptor_but_keeps_world() {
        struct Nop;
        impl Interceptor for Nop {
            fn before(&mut self, _: &mut Os, _: &InteractionRef, _: &Syscall) {}
            fn after(&mut self, _: &mut Os, _: &InteractionRef, _: &mut SysResult<SysReturn>) {}
        }
        let mut os = world();
        os.set_interceptor(Box::new(Nop));
        let copy = os.clone();
        assert!(!copy.is_hooked());
        assert_eq!(copy.fs.inode_count(), os.fs.inode_count());
    }

    #[test]
    fn clone_is_cow_snapshot_and_deep_clone_materializes() {
        let os = world();
        let snap = os.clone();
        assert_eq!(snap.fs.shared_inodes_with(&os.fs), os.fs.inode_count());
        assert!(snap.net.shares_storage_with(&os.net));
        assert!(snap.registry.shares_storage_with(&os.registry));
        let deep = os.deep_clone();
        assert_eq!(deep.fs.shared_inodes_with(&os.fs), 0);
        assert!(!deep.net.shares_storage_with(&os.net));
        assert!(!deep.registry.shares_storage_with(&os.registry));
        assert_eq!(deep.fs, os.fs);
    }

    #[test]
    fn relative_paths_resolve_against_cwd() {
        let mut os = world();
        let pid = os
            .spawn(os.scenario.invoker, None, vec![], BTreeMap::new(), "/home/student")
            .unwrap();
        os.sys_write_file(pid, "app:create", "notes.txt", "hi", 0o644).unwrap();
        assert!(os.fs.exists("/home/student/notes.txt"));
        os.sys_chdir(pid, "app:chdir", "/tmp").unwrap();
        os.sys_write_file(pid, "app:create2", "t.txt", "x", 0o644).unwrap();
        assert!(os.fs.exists("/tmp/t.txt"));
    }

    #[test]
    fn registry_read_from_unprotected_key_is_tainted() {
        let mut os = world();
        os.registry.ensure_key(
            "HKLM/Software/Fonts",
            crate::registry::RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        os.registry
            .god_set_value("HKLM/Software/Fonts", "F0", "/winnt/arial.fon");
        os.users.add("admin", Uid::ROOT, Gid::ROOT, "/root");
        let pid = os.spawn(Uid::ROOT, None, vec![], BTreeMap::new(), "/").unwrap();
        let v = os
            .sys_reg_read(
                pid,
                "mod:regread",
                "HKLM/Software/Fonts",
                "F0",
                InputSemantic::FsFileName,
            )
            .unwrap();
        assert!(v.has_untrusted());
    }

    #[test]
    fn spoofed_message_carries_label() {
        let mut os = world();
        os.net
            .push_message(79, Message::genuine("trusted.cs.example.edu", "req"));
        os.net.spoof_next(79, "evil.example.net");
        let pid = os
            .spawn(os.scenario.invoker, None, vec![], BTreeMap::new(), "/")
            .unwrap();
        let m = os.sys_net_recv(pid, "srv:recv", 79, InputSemantic::NetPacket).unwrap();
        assert!(m.data.has_spoofed());
    }

    #[test]
    fn overflow_audit_event_from_mem_copy() {
        let mut os = world();
        let pid = os
            .spawn(os.scenario.invoker, None, vec![], BTreeMap::new(), "/")
            .unwrap();
        let mut buf = FixedBuf::new("line", 4);
        let out = os.mem_copy(pid, &mut buf, &Data::from("AAAAAAAA"), CopyDiscipline::Unchecked);
        assert!(matches!(out, CopyOutcome::Overflowed { .. }));
        let v = OracleSet::standard().evaluate_log(&os.audit);
        assert!(v
            .iter()
            .any(|x| x.kind == crate::policy::ViolationKind::MemoryCorruption));
    }
}
