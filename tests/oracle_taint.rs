//! Integration: the oracle's taint machinery — the subtle invariants the
//! case studies depend on.

use std::collections::BTreeMap;

use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::data::{Data, PathArg};
use epa::sandbox::fs::FileTag;
use epa::sandbox::mode::Mode;
use epa::sandbox::os::Os;
use epa::sandbox::policy::{OracleSet, ViolationKind};
use epa::sandbox::process::Pid;

fn world() -> Os {
    let mut os = Os::new();
    os.users.add("root", Uid::ROOT, Gid::ROOT, "/root");
    os.users
        .add("user", os.scenario.invoker, os.scenario.invoker_gid, "/home/user");
    os.users
        .add("evil", os.scenario.attacker, os.scenario.attacker_gid, "/home/evil");
    os.fs.mkdir_p("/tmp", Uid::ROOT, Gid::ROOT, Mode::new(0o1777)).unwrap();
    os.fs.mkdir_p("/work", Uid::ROOT, Gid::ROOT, Mode::new(0o777)).unwrap();
    os.fs
        .put_file("/bin/suid", "", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))
        .unwrap();
    os
}

fn spawn_suid(os: &mut Os) -> Pid {
    os.spawn(os.scenario.invoker, Some("/bin/suid"), vec![], BTreeMap::new(), "/")
        .unwrap()
}

#[test]
fn cwd_taint_flows_into_relative_writes() {
    let mut os = world();
    // A directory name that came from an attacker-controlled source.
    os.fs
        .mkdir_p(
            "/work/dropzone",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o777),
        )
        .unwrap();
    let pid = spawn_suid(&mut os);
    let tainted_dir =
        Data::from("/work/dropzone").with_label(epa::sandbox::data::Label::Untrusted { source: "test".into() });
    os.sys_chdir(pid, "t:chdir", PathArg::from(&tainted_dir)).unwrap();
    os.sys_write_file(pid, "t:write", "out.txt", "data", 0o644).unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(
        v.iter().any(|x| x.kind == ViolationKind::TaintedPrivilegedOp),
        "relative write inherits the cwd's taint: {v:?}"
    );
}

#[test]
fn clean_chdir_clears_previous_taint() {
    let mut os = world();
    os.fs
        .mkdir_p(
            "/work/dropzone",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o777),
        )
        .unwrap();
    let pid = spawn_suid(&mut os);
    let tainted_dir =
        Data::from("/work/dropzone").with_label(epa::sandbox::data::Label::Untrusted { source: "test".into() });
    os.sys_chdir(pid, "t:chdir1", PathArg::from(&tainted_dir)).unwrap();
    // Back to a clean, program-chosen directory.
    os.sys_chdir(pid, "t:chdir2", "/tmp").unwrap();
    os.sys_write_file(pid, "t:write", "out.txt", "data", 0o644).unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(v.is_empty(), "taint must not outlive the tainted cwd: {v:?}");
}

#[test]
fn absolute_writes_ignore_cwd_taint() {
    let mut os = world();
    os.fs
        .mkdir_p(
            "/work/dropzone",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o777),
        )
        .unwrap();
    let pid = spawn_suid(&mut os);
    let tainted_dir =
        Data::from("/work/dropzone").with_label(epa::sandbox::data::Label::Untrusted { source: "test".into() });
    os.sys_chdir(pid, "t:chdir", PathArg::from(&tainted_dir)).unwrap();
    os.sys_write_file(pid, "t:write", "/tmp/out.txt", "data", 0o600)
        .unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(
        v.is_empty(),
        "an absolute path does not land where the cwd pointed: {v:?}"
    );
}

#[test]
fn appending_to_a_file_created_this_run_is_not_integrity_violation() {
    let mut os = world();
    let pid = spawn_suid(&mut os);
    os.sys_create_excl(pid, "t:create", "/tmp/own.tmp", 0o600).unwrap();
    os.sys_append(pid, "t:append", "/tmp/own.tmp", "more", 0o600).unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(v.is_empty(), "a program may append to its own fresh files: {v:?}");
}

#[test]
fn appending_to_a_preexisting_foreign_file_is_integrity_violation() {
    let mut os = world();
    os.fs
        .put_file(
            "/tmp/foreign",
            "theirs",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o644),
        )
        .unwrap();
    let pid = spawn_suid(&mut os);
    os.sys_append(pid, "t:append", "/tmp/foreign", "mine", 0o600).unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(v.iter().any(|x| x.kind == ViolationKind::IntegrityWrite), "{v:?}");
}

#[test]
fn unlink_then_recreate_clears_created_by_self_history() {
    let mut os = world();
    let pid = spawn_suid(&mut os);
    os.sys_create_excl(pid, "t:create", "/tmp/cycle", 0o600).unwrap();
    os.sys_unlink(pid, "t:unlink", "/tmp/cycle").unwrap();
    // Attacker plants a file at the same name (simulated directly).
    os.fs
        .put_file(
            "/tmp/cycle",
            "planted",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o644),
        )
        .unwrap();
    os.sys_write_file(pid, "t:rewrite", "/tmp/cycle", "x", 0o600).unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(
        v.iter().any(|x| x.kind == ViolationKind::IntegrityWrite),
        "the earlier create must not whitelist the attacker's replacement: {v:?}"
    );
}

#[test]
fn secret_written_to_invoker_readable_file_is_disclosure() {
    let mut os = world();
    os.fs
        .put_file("/etc/shadow", "root:HASH", Uid::ROOT, Gid::ROOT, Mode::new(0o600))
        .unwrap();
    os.fs.tag("/etc/shadow", FileTag::Secret).unwrap();
    let pid = spawn_suid(&mut os);
    let secret = os.sys_read_file(pid, "t:read", "/etc/shadow").unwrap();
    os.sys_write_file(pid, "t:write", "/tmp/drop.txt", secret, 0o644)
        .unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(v.iter().any(|x| x.kind == ViolationKind::Disclosure), "{v:?}");
}

#[test]
fn secret_written_to_private_file_is_not_disclosure() {
    let mut os = world();
    os.fs
        .put_file("/etc/shadow", "root:HASH", Uid::ROOT, Gid::ROOT, Mode::new(0o600))
        .unwrap();
    os.fs.tag("/etc/shadow", FileTag::Secret).unwrap();
    let pid = spawn_suid(&mut os);
    let secret = os.sys_read_file(pid, "t:read", "/etc/shadow").unwrap();
    // Mode 0600, owner root: the invoker cannot read the copy.
    os.sys_write_file(pid, "t:write", "/tmp/private.bak", secret, 0o600)
        .unwrap();
    let v = OracleSet::standard().evaluate_log(&os.audit);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn incremental_subscription_sees_what_the_batch_scan_sees() {
    // The same disclosure scenario twice: once with the oracle subscribed
    // to the audit log while the syscalls happen, once re-scanned post-hoc.
    let judge = |subscribe: bool| {
        let mut os = world();
        os.fs
            .put_file("/etc/shadow", "root:HASH", Uid::ROOT, Gid::ROOT, Mode::new(0o600))
            .unwrap();
        os.fs.tag("/etc/shadow", FileTag::Secret).unwrap();
        if subscribe {
            os.audit.attach_oracle(OracleSet::standard());
        }
        assert_eq!(os.audit.has_oracle(), subscribe);
        let pid = spawn_suid(&mut os);
        let secret = os.sys_read_file(pid, "t:read", "/etc/shadow").unwrap();
        os.sys_write_file(pid, "t:write", "/tmp/drop.txt", secret, 0o644)
            .unwrap();
        match os.audit.detach_oracle() {
            Some(mut oracle) => oracle.finish(),
            None => OracleSet::standard().evaluate_log(&os.audit),
        }
    };
    let incremental = judge(true);
    let batch = judge(false);
    assert_eq!(incremental, batch);
    let disclosure = incremental
        .iter()
        .find(|v| v.kind == ViolationKind::Disclosure)
        .expect("disclosure detected");
    // The evidence chain points at the implicated write event.
    assert_eq!(disclosure.evidence.first_index(), Some(disclosure.event_index));
    assert!(disclosure.evidence.items[0].summary.contains("/tmp/drop.txt"));
}

#[test]
fn labels_follow_data_through_parsing() {
    let mut os = world();
    os.fs
        .put_file(
            "/work/config",
            "target=/etc/passwd",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o644),
        )
        .unwrap();
    let pid = spawn_suid(&mut os);
    let config = os.sys_read_file(pid, "t:read", "/work/config").unwrap();
    assert!(config.has_untrusted(), "attacker-owned file content is untrusted");
    // Parse a field out of it: the label must survive.
    let field = config.split_text('=').pop().unwrap();
    assert!(field.has_untrusted());
    let arg = PathArg::from(&field);
    assert!(arg.has_untrusted());
}
