//! `authd`: a three-step protocol daemon (HELO → AUTH → CMD) exercising the
//! paper's protocol, authenticity and process-trust perturbations.
//!
//! The daemon registers user keys in the root-owned `/etc/auth_keys`. The
//! protocol requires a successful `AUTH <token>` before any `CMD`. Seeded
//! flaws in the vulnerable version:
//!
//! * a sloppy state machine that executes `CMD` whether or not `AUTH`
//!   succeeded (defeated by the omit-a-step protocol perturbation);
//! * the session identity is taken from the claimed `HELO` origin
//!   (defeated by the authenticity perturbation);
//! * an unchecked copy of each message into a fixed line buffer.

use epa_sandbox::app::Application;
use epa_sandbox::buffer::{CopyDiscipline, FixedBuf};
use epa_sandbox::data::Data;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// The daemon's listening port.
pub const AUTHD_PORT: u16 = 113;
/// Where the shared secret lives.
pub const SECRET_FILE: &str = "/etc/authd.secret";
/// The key database the daemon appends to.
pub const KEYS_FILE: &str = "/etc/auth_keys";

/// The `authd` world, declared as data: a three-step (HELO/AUTH/CMD)
/// key-registration daemon.
pub fn spec() -> epa_core::engine::WorldSpec {
    use epa_sandbox::cred::{Gid, Uid};
    let mut b = crate::worlds::base_unix_builder()
        .user("user1001", Uid(1001), Gid(100), "/home/user1001")
        .root_file(SECRET_FILE, "s3cret-token", 0o600)
        .root_file(KEYS_FILE, "# authorized keys\n", 0o600)
        .root_file("/usr/sbin/authd", "", 0o755);
    for step in [
        "HELO client.cs.example.edu",
        "AUTH s3cret-token",
        "CMD addkey user1001 ssh-rsa-KEY",
    ] {
        b = b.inbound_message(AUTHD_PORT, "client.cs.example.edu", step);
    }
    b.invoker(Uid::ROOT).cwd("/").build()
}

/// The vulnerable daemon.
#[derive(Debug, Clone, Copy, Default)]
pub struct Authd;

impl Application for Authd {
    fn name(&self) -> &'static str {
        "authd"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        // Flaw: if the secret cannot be read the daemon keeps going with an
        // empty secret instead of shutting down.
        let secret = os
            .sys_read_file(pid, "authd:read_secret", SECRET_FILE)
            .map(|d| d.text())
            .unwrap_or_default();

        let mut authed = false;
        let mut session: Option<Data> = None;
        for _ in 0..3 {
            let Ok(msg) = os.sys_net_recv(pid, "authd:recv", AUTHD_PORT, InputSemantic::NetPacket) else {
                break;
            };
            // Flaw: unchecked copy of the line.
            let mut line = FixedBuf::new("linebuf", 256);
            os.mem_copy(pid, &mut line, &msg.data, CopyDiscipline::Unchecked);
            let text = line.text();
            if let Some(host) = text.strip_prefix("HELO ") {
                // Flaw: identity is whatever the message claims.
                let mut ident = Data::from(host.trim());
                ident.taint_from(&msg.data);
                session = Some(ident);
            } else if let Some(token) = text.strip_prefix("AUTH ") {
                authed = token.trim() == secret.trim();
            } else if let Some(cmd) = text.strip_prefix("CMD addkey ") {
                // Flaw: no check that AUTH happened.
                os.emit_custom(
                    "authd-cmd-without-auth",
                    !authed,
                    format!("CMD executed with authed={authed}"),
                );
                let mut record = Data::from("key ");
                if let Some(ident) = &session {
                    record.append(ident);
                    record.push_str(" ");
                }
                record.push_str(cmd.trim());
                record.push_str("\n");
                record.taint_from(&msg.data);
                if os
                    .sys_append(pid, "authd:append_keys", KEYS_FILE, record, 0o600)
                    .is_err()
                {
                    let _ = os.sys_print(pid, "authd:warn", "authd: cannot update key database\n");
                }
            }
        }
        0
    }
}

/// The patched daemon: strict step ordering, fail-closed secret handling,
/// checked copies, and no unauthenticated identity in records.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuthdFixed;

impl Application for AuthdFixed {
    fn name(&self) -> &'static str {
        "authd-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let secret = match os.sys_read_file(pid, "authd:read_secret", SECRET_FILE) {
            Ok(d) => d.text(),
            Err(_) => {
                // Fix: no secret, no service.
                let _ = os.sys_print(pid, "authd:warn", "authd: secret unavailable, shutting down\n");
                return 1;
            }
        };
        if secret.trim().is_empty() {
            let _ = os.sys_print(pid, "authd:warn", "authd: empty secret, shutting down\n");
            return 1;
        }

        // Fix: explicit protocol state machine.
        let mut state = 0u8; // 0 = expect HELO, 1 = expect AUTH, 2 = expect CMD
        let mut authed = false;
        for _ in 0..3 {
            let Ok(msg) = os.sys_net_recv(pid, "authd:recv", AUTHD_PORT, InputSemantic::NetPacket) else {
                break;
            };
            let mut line = FixedBuf::new("linebuf", 256);
            os.mem_copy(pid, &mut line, &msg.data, CopyDiscipline::Checked);
            let text = line.text();
            match state {
                0 if text.starts_with("HELO ") => state = 1,
                1 if text.starts_with("AUTH ") => {
                    let token = text.trim_start_matches("AUTH ").trim();
                    if token == secret.trim() {
                        authed = true;
                        state = 2;
                    } else {
                        let _ = os.sys_print(pid, "authd:warn", "authd: bad token, closing\n");
                        return 1;
                    }
                }
                2 if text.starts_with("CMD addkey ") => {
                    os.emit_custom("authd-cmd-without-auth", !authed, "strict state machine".to_string());
                    if authed {
                        let cmd = text.trim_start_matches("CMD addkey ").trim().to_string();
                        // Fix: the record carries only the authenticated
                        // command payload, never claimed identities.
                        let mut record = Data::from("key ");
                        record.push_str(&cmd);
                        record.push_str("\n");
                        if os
                            .sys_append(pid, "authd:append_keys", KEYS_FILE, record, 0o600)
                            .is_err()
                        {
                            let _ = os.sys_print(pid, "authd:warn", "authd: cannot update key database\n");
                        }
                    }
                }
                _ => {
                    let _ = os.sys_print(pid, "authd:warn", "authd: protocol violation, closing\n");
                    return 1;
                }
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;
    use epa_sandbox::policy::ViolationKind;

    #[test]
    fn clean_session_registers_key_without_violation() {
        let setup = worlds::authd_world();
        let out = run_once(&setup, &Authd, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let keys = out.os.fs.god_read(KEYS_FILE).unwrap();
        assert!(keys.text().contains("user1001"), "{}", keys.text());
    }

    #[test]
    fn omitting_the_auth_step_defeats_the_vulnerable_daemon() {
        let mut setup = worlds::authd_world();
        setup.world.net.omit_step(AUTHD_PORT, 1);
        let out = run_once(&setup, &Authd, None);
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::Custom),
            "{:?}",
            out.violations
        );
        let fixed = run_once(&setup, &AuthdFixed, None);
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
    }

    #[test]
    fn spoofed_helo_taints_the_key_record() {
        let mut setup = worlds::authd_world();
        setup.world.net.spoof_next(AUTHD_PORT, "evil.example.net");
        let out = run_once(&setup, &Authd, None);
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::SpoofedAction),
            "{:?}",
            out.violations
        );
        let fixed = run_once(&setup, &AuthdFixed, None);
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
    }

    #[test]
    fn fixed_daemon_shuts_down_without_its_secret() {
        let mut setup = worlds::authd_world();
        setup.world.fs.god_remove(SECRET_FILE).unwrap();
        let out = run_once(&setup, &AuthdFixed, None);
        assert_eq!(out.exit, Some(1));
        assert!(out.violations.is_empty());
    }

    #[test]
    fn custom_check_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::authd_world();
        setup.world.net.omit_step(AUTHD_PORT, 1);
        let out = run_once(&setup, &Authd, None);
        crate::assert_evidence_in_bounds(&out);
        let custom = out
            .violations
            .iter()
            .find(|v| v.kind == ViolationKind::Custom)
            .expect("skipped-auth check detected");
        assert_eq!(custom.detector, "custom");
        assert!(custom.evidence.items[0].summary.starts_with("custom:"));
    }
}
