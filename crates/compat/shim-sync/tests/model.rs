//! Self-tests for the model checker: each detector catches its bug
//! class, and correct protocols explore cleanly to completion.
#![cfg(feature = "model-check")]

use std::sync::atomic::Ordering;

use shim_sync::cell::RaceCell;
use shim_sync::model::{check, Config, FailureKind, Strategy};
use shim_sync::sync::atomic::AtomicUsize;
use shim_sync::sync::{Arc, Condvar, Mutex};
use shim_sync::thread;

#[test]
fn mutex_counter_explores_multiple_schedules_cleanly() {
    let report = check("mutex_counter", &Config::default(), || {
        let n = Arc::new(Mutex::new(0usize));
        thread::scope(|s| {
            for _ in 0..2 {
                let n = n.clone();
                s.spawn(move || {
                    let mut g = n.lock().expect("lock");
                    *g += 1;
                });
            }
        });
        assert_eq!(*n.lock().expect("lock"), 2);
    });
    report.assert_complete();
    assert!(report.iterations > 1, "two racing lockers must yield several schedules");
}

#[test]
fn unsynchronized_writes_are_reported_as_a_race() {
    let report = check("racecell_ww", &Config::default(), || {
        let cell = Arc::new(RaceCell::new(0usize));
        thread::scope(|s| {
            for i in 0..2 {
                let cell = cell.clone();
                s.spawn(move || cell.set(i));
            }
        });
    });
    let failure = report.expect_failure("two unsynchronized writers always race");
    assert_eq!(failure.kind, FailureKind::Race, "got: {failure:?}");
}

#[test]
fn lock_protected_writes_do_not_race() {
    let report = check("racecell_locked", &Config::default(), || {
        let cell = Arc::new(RaceCell::new(0usize));
        let lock = Arc::new(Mutex::new(()));
        thread::scope(|s| {
            for _ in 0..2 {
                let cell = cell.clone();
                let lock = lock.clone();
                s.spawn(move || {
                    let _g = lock.lock().expect("lock");
                    let v = cell.get();
                    cell.set(v + 1);
                });
            }
        });
        assert_eq!(cell.get(), 2);
    });
    report.assert_complete();
}

#[test]
fn release_acquire_atomics_publish_data() {
    // Message-passing via a release store / acquire load: the reader
    // only touches the cell after observing the flag, so the atomic's
    // happens-before edge must make the accesses ordered.
    let report = check("atomic_publish", &Config::default(), || {
        let data = Arc::new(RaceCell::new(0usize));
        let flag = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            let d = data.clone();
            let f = flag.clone();
            s.spawn(move || {
                d.set(42);
                f.store(1, Ordering::Release);
            });
            let d = data.clone();
            let f = flag.clone();
            s.spawn(move || {
                if f.load(Ordering::Acquire) == 1 {
                    assert_eq!(d.get(), 42);
                }
            });
        });
    });
    report.assert_complete();
}

#[test]
fn ab_ba_locking_is_reported() {
    let report = check("ab_ba", &Config::default(), || {
        let a = Arc::new(Mutex::labeled("lock.a", ()));
        let b = Arc::new(Mutex::labeled("lock.b", ()));
        thread::scope(|s| {
            let (a1, b1) = (a.clone(), b.clone());
            s.spawn(move || {
                let _ga = a1.lock().expect("a");
                let _gb = b1.lock().expect("b");
            });
            let (a2, b2) = (a.clone(), b.clone());
            s.spawn(move || {
                let _gb = b2.lock().expect("b");
                let _ga = a2.lock().expect("a");
            });
        });
    });
    let failure = report.expect_failure("AB-BA ordering must be caught");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock | FailureKind::LockCycle),
        "got: {failure:?}"
    );
}

#[test]
fn lost_wakeup_is_reported() {
    // Classic bug: the producer notifies BEFORE publishing under the
    // lock. A schedule exists where the waiter wakes on the early
    // notify, rechecks, sees nothing, and re-parks — after which the
    // publication happens with no further signal.
    let report = check("lost_wakeup", &Config::default(), || {
        let slot = Arc::new((Mutex::labeled("slot.state", false), Condvar::labeled("slot.cv")));
        thread::scope(|s| {
            let waiter = slot.clone();
            s.spawn(move || {
                let (lock, cv) = &*waiter;
                let mut ready = lock.lock().expect("lock");
                while !*ready {
                    ready = cv.wait(ready).expect("wait");
                }
            });
            let producer = slot.clone();
            s.spawn(move || {
                let (lock, cv) = &*producer;
                cv.notify_all(); // BUG: signal precedes the publication
                *lock.lock().expect("lock") = true;
            });
        });
    });
    let failure = report.expect_failure("notify-before-publish must lose a wakeup");
    assert_eq!(failure.kind, FailureKind::LostWakeup, "got: {failure:?}");
}

#[test]
fn correct_condvar_handoff_is_clean() {
    let report = check("condvar_handoff", &Config::default(), || {
        let slot = Arc::new((Mutex::labeled("slot.state", false), Condvar::labeled("slot.cv")));
        thread::scope(|s| {
            let waiter = slot.clone();
            s.spawn(move || {
                let (lock, cv) = &*waiter;
                let mut ready = lock.lock().expect("lock");
                while !*ready {
                    ready = cv.wait(ready).expect("wait");
                }
            });
            let producer = slot.clone();
            s.spawn(move || {
                let (lock, cv) = &*producer;
                *lock.lock().expect("lock") = true;
                cv.notify_all();
            });
        });
    });
    report.assert_complete();
}

#[test]
fn unbounded_spin_hits_the_step_bound() {
    let cfg = Config {
        max_steps: 500,
        ..Config::default()
    };
    let report = check("spin", &cfg, || {
        let flag = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            let f = flag.clone();
            s.spawn(move || {
                // Spin-wait with no partner ever setting the flag.
                while f.load(Ordering::Acquire) == 0 {
                    thread::yield_now();
                }
            });
        });
    });
    let failure = report.expect_failure("a pure spin must exceed the step budget");
    assert_eq!(failure.kind, FailureKind::StepBound, "got: {failure:?}");
}

#[test]
fn channel_send_is_a_happens_before_edge() {
    use shim_sync::sync::mpsc;
    let report = check("chan_hb", &Config::default(), || {
        let cell = Arc::new(RaceCell::new(0usize));
        let (tx, rx) = mpsc::channel::<usize>();
        thread::scope(|s| {
            let c = cell.clone();
            s.spawn(move || {
                c.set(7);
                tx.send(1).expect("send");
            });
            let c = cell.clone();
            s.spawn(move || {
                let _ = rx.recv().expect("recv");
                assert_eq!(c.get(), 7);
            });
        });
    });
    report.assert_complete();
}

#[test]
fn fixture_assertions_surface_as_panic_failures() {
    let report = check("assert_fail", &Config::default(), || {
        let n = Arc::new(AtomicUsize::new(0));
        thread::scope(|s| {
            let n1 = n.clone();
            s.spawn(move || {
                // Non-atomic increment: load, then store. Some schedule
                // loses an update and the final assert fires.
                let v = n1.load(Ordering::SeqCst);
                n1.store(v + 1, Ordering::SeqCst);
            });
            let n2 = n.clone();
            s.spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
        });
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = report.expect_failure("the lost-update schedule must be found");
    assert_eq!(failure.kind, FailureKind::Panic, "got: {failure:?}");
}

#[test]
fn random_walk_finds_the_same_race() {
    let cfg = Config {
        strategy: Strategy::Random { seed: 7 },
        max_iterations: 200,
        ..Config::default()
    };
    let report = check("racecell_random", &cfg, || {
        let cell = Arc::new(RaceCell::new(0usize));
        thread::scope(|s| {
            for i in 0..2 {
                let cell = cell.clone();
                s.spawn(move || cell.set(i));
            }
        });
    });
    let failure = report.expect_failure("random walk must hit the race quickly");
    assert_eq!(failure.kind, FailureKind::Race);
    assert!(!report.complete, "random walks never claim completeness");
}

#[test]
fn outside_an_execution_the_types_forward_to_std() {
    // Plain threads + shim primitives without check(): std behavior.
    let n = Arc::new(Mutex::new(0usize));
    let (tx, rx) = shim_sync::sync::mpsc::channel::<usize>();
    thread::scope(|s| {
        for i in 0..4 {
            let n = n.clone();
            let tx = tx.clone();
            s.spawn(move || {
                *n.lock().expect("lock") += 1;
                tx.send(i).expect("send");
            });
        }
    });
    drop(tx);
    assert_eq!(*n.lock().expect("lock"), 4);
    let mut got: Vec<usize> = rx.into_iter().collect();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3]);
}
