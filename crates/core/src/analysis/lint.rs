//! The world linter: stable, machine-readable diagnostics over a world
//! spec and its application model.
//!
//! | Code      | Severity | Meaning                                                      |
//! |-----------|----------|--------------------------------------------------------------|
//! | `EPA0001` | error    | invariant constrains a path that cannot exist (unreachable)  |
//! | `EPA0002` | warning  | shadowed or dangling symlink in the declared world           |
//! | `EPA0003` | info     | catalog faults at a site are provably inert (dead faults)    |
//! | `EPA0004` | warning  | invariant on a path no script/trace event touches            |
//! | `EPA0005` | warning  | occurrence budget exceeds the static hit bound               |
//!
//! Codes are stable: tests, CI gates, and downstream tooling key on them.
//! Diagnostics are sorted by `(code, subject)` so output is deterministic
//! for a given world — `tests/props_analysis.rs` pins byte-identical
//! reports across repeated runs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use epa_sandbox::path;
use epa_sandbox::policy::InvariantSpec;
use epa_sandbox::trace::SiteId;

use crate::corpus::Scenario;
use crate::engine::spec::WorldSpec;
use crate::inject::InjectionPlan;

use super::statics::{declared_exists, resolve_alias, static_model};
use super::AppAnalysis;

/// Diagnostic severity. Only `Error` fails `reproduce -- lint` (and the CI
/// lint job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// The world is self-contradictory; campaigns over it measure nothing.
    Error,
    /// Probably a spec mistake; campaigns still run soundly.
    Warning,
    /// Informational (e.g. dead-fault statistics).
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// One diagnostic: a stable code, a severity, the subject it is about, and
/// a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code (`EPA0001`…).
    pub code: String,
    /// Severity.
    pub severity: Severity,
    /// What the diagnostic is about (a path, site, or link).
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(code: &str, severity: Severity, subject: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code, self.severity, self.subject, self.message
        )
    }
}

/// The lint result for one world (an app or a corpus scenario).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// What was linted (app name or scenario id).
    pub subject: String,
    /// The diagnostics, sorted by `(code, subject)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    fn new(subject: impl Into<String>, mut diagnostics: Vec<Diagnostic>) -> LintReport {
        diagnostics.sort_by(|a, b| (&a.code, &a.subject).cmp(&(&b.code, &b.subject)));
        LintReport {
            subject: subject.into(),
            diagnostics,
        }
    }

    /// How many diagnostics carry the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// True when any diagnostic is an error (the CI-failing condition).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The human-readable rendering, one line per diagnostic.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "lint {}: {} error(s), {} warning(s), {} info\n",
            self.subject,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }
}

/// The world facts the shared checks consume — produced either statically
/// (scenario scripts) or from a clean-run analysis (hand-written apps).
struct WorldFacts {
    touched_paths: BTreeSet<String>,
    created_paths: BTreeSet<String>,
    site_hits: BTreeMap<SiteId, usize>,
    /// Per-site count of provably inert catalog faults (dead faults).
    dead_faults: BTreeMap<String, usize>,
    /// The campaign's per-site occurrence cap, when one applies.
    occurrence_budget: Option<usize>,
}

fn check_world(spec: &WorldSpec, facts: &WorldFacts) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // EPA0001 / EPA0004: invariants against the touched/created path sets.
    for inv in &spec.invariants {
        if let InvariantSpec::FilePristine { path: p } = inv {
            let (resolved, _) = resolve_alias(spec, p);
            let exists = declared_exists(spec, &resolved) || declared_exists(spec, p);
            let created = facts.created_paths.contains(&resolved) || facts.created_paths.contains(&path::clean(p));
            let touched = facts.touched_paths.contains(&resolved) || facts.touched_paths.contains(&path::clean(p));
            if !exists && !created {
                out.push(Diagnostic::new(
                    "EPA0001",
                    Severity::Error,
                    p.clone(),
                    "invariant constrains a path that neither exists in the declared world nor is ever created — it can never be meaningfully checked",
                ));
            } else if !touched {
                out.push(Diagnostic::new(
                    "EPA0004",
                    Severity::Warning,
                    p.clone(),
                    "invariant constrains a path no interaction touches; only an injected alias or traversal fault could ever reach it",
                ));
            }
        }
    }

    // EPA0002: shadowed or dangling symlinks.
    for link in &spec.symlinks {
        let link_path = path::clean(&link.link);
        let shadowed_by_file = spec.files.iter().any(|f| path::clean(&f.path) == link_path);
        let shadowed_by_dir = spec.dirs.iter().any(|d| path::clean(&d.path) == link_path);
        if shadowed_by_file || shadowed_by_dir {
            out.push(Diagnostic::new(
                "EPA0002",
                Severity::Warning,
                link_path.clone(),
                format!(
                    "symlink to `{}` is also declared as a {} — one declaration shadows the other",
                    link.target,
                    if shadowed_by_file { "file" } else { "directory" }
                ),
            ));
            continue;
        }
        let (resolved, _) = resolve_alias(spec, &link_path);
        if !declared_exists(spec, &resolved) && !facts.created_paths.contains(&resolved) {
            out.push(Diagnostic::new(
                "EPA0002",
                Severity::Warning,
                link_path,
                format!(
                    "symlink target `{}` resolves to `{resolved}`, which nothing declares or creates (dangling alias)",
                    link.target
                ),
            ));
        }
    }

    // EPA0003: dead catalog faults, aggregated per site.
    for (site, count) in &facts.dead_faults {
        if *count > 0 {
            out.push(Diagnostic::new(
                "EPA0003",
                Severity::Info,
                site.clone(),
                format!("{count} catalog fault(s) at this site are provably inert and will be pruned"),
            ));
        }
    }

    // EPA0005: a finite occurrence budget no site can spend.
    if let Some(budget) = facts.occurrence_budget {
        let max_hits = facts.site_hits.values().copied().max().unwrap_or(0);
        if budget != usize::MAX && budget > 1 && budget > max_hits {
            out.push(Diagnostic::new(
                "EPA0005",
                Severity::Warning,
                format!("occurrence budget {budget}"),
                format!("exceeds the static hit bound ({max_hits}): occurrences past the bound can never fire"),
            ));
        }
    }

    out
}

/// Per-site counts of provably inert faults over a planned job list.
fn dead_fault_tally(analysis: &AppAnalysis, jobs: &[InjectionPlan]) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for job in jobs {
        if analysis.classify(job).is_inert() {
            *out.entry(job.site.to_string()).or_default() += 1;
        }
    }
    out
}

/// Lints a corpus scenario purely statically: the script is walked against
/// the spec without executing anything.
pub fn lint_scenario(scenario: &Scenario) -> LintReport {
    let model = static_model(&scenario.spec, &scenario.script);
    let facts = WorldFacts {
        touched_paths: model.touched_paths(),
        created_paths: model.created_paths(),
        site_hits: model.hit_bounds(),
        dead_faults: BTreeMap::new(),
        occurrence_budget: None,
    };
    LintReport::new(scenario.id.clone(), check_world(&scenario.spec, &facts))
}

/// Lints a hand-written application's world: the clean-run analysis stands
/// in for the static model (the trace *is* the model for apps that exist as
/// code), and the planned job list feeds the dead-fault statistics.
pub fn lint_setup(
    name: &str,
    spec: &WorldSpec,
    analysis: &AppAnalysis,
    jobs: &[InjectionPlan],
    occurrence_budget: Option<usize>,
) -> LintReport {
    let facts = WorldFacts {
        touched_paths: analysis.touched_paths(),
        created_paths: analysis.written_paths(),
        site_hits: analysis.site_hits(),
        dead_faults: dead_fault_tally(analysis, jobs),
        occurrence_budget,
    };
    LintReport::new(name, check_world(spec, &facts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{BehaviorScript, BehaviorStep};
    use crate::engine::spec::{FileSpec, SymlinkSpec};
    use epa_sandbox::cred::{Gid, Uid};

    fn scenario(spec: WorldSpec, steps: Vec<BehaviorStep>) -> Scenario {
        Scenario {
            id: "test-scn".to_string(),
            seed: 0,
            spec,
            script: BehaviorScript::new(steps),
        }
    }

    fn file(path: &str) -> FileSpec {
        FileSpec {
            path: path.to_string(),
            content: "x".to_string(),
            owner: Uid::ROOT,
            group: Gid::ROOT,
            mode: 0o644,
        }
    }

    #[test]
    fn epa0001_fires_on_unreachable_invariant_paths() {
        let mut spec = WorldSpec::default();
        spec.invariants.push(InvariantSpec::file_pristine("/ghost/never"));
        let report = lint_scenario(&scenario(spec, vec![]));
        assert!(report.has_errors());
        assert_eq!(report.diagnostics[0].code, "EPA0001");
        assert_eq!(report.diagnostics[0].subject, "/ghost/never");
    }

    #[test]
    fn epa0001_spares_paths_the_script_creates() {
        let mut spec = WorldSpec::default();
        spec.invariants.push(InvariantSpec::file_pristine("/var/out"));
        let report = lint_scenario(&scenario(
            spec,
            vec![BehaviorStep::WriteFile {
                path: "/var/out".into(),
                content: "x".into(),
                mode: 0o644,
            }],
        ));
        assert!(!report.has_errors(), "{report:?}");
    }

    #[test]
    fn epa0002_fires_on_dangling_and_shadowed_links() {
        let mut spec = WorldSpec::default();
        spec.symlinks.push(SymlinkSpec {
            link: "/etc/alias".into(),
            target: "/nowhere/real".into(),
        });
        let report = lint_scenario(&scenario(spec.clone(), vec![]));
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(report.diagnostics[0].code, "EPA0002");

        spec.files.push(file("/etc/alias"));
        let report = lint_scenario(&scenario(spec, vec![]));
        assert!(report.diagnostics[0].message.contains("shadows"));
    }

    #[test]
    fn epa0004_fires_on_untouched_invariant_paths() {
        let mut spec = WorldSpec::default();
        spec.files.push(file("/etc/precious"));
        spec.invariants.push(InvariantSpec::file_pristine("/etc/precious"));
        let report = lint_scenario(&scenario(
            spec,
            vec![BehaviorStep::ReadFile {
                path: "/etc/other".into(),
                times: 1,
            }],
        ));
        assert!(!report.has_errors());
        assert_eq!(report.count(Severity::Warning), 1);
        assert_eq!(report.diagnostics[0].code, "EPA0004");
    }

    #[test]
    fn clean_worlds_lint_clean() {
        let mut spec = WorldSpec::default();
        spec.files.push(file("/etc/conf"));
        spec.invariants.push(InvariantSpec::file_pristine("/etc/conf"));
        let report = lint_scenario(&scenario(
            spec,
            vec![BehaviorStep::ReadFile {
                path: "/etc/conf".into(),
                times: 1,
            }],
        ));
        assert!(report.diagnostics.is_empty(), "{report:?}");
    }

    #[test]
    fn rendering_is_deterministic_and_lists_every_diagnostic() {
        let mut spec = WorldSpec::default();
        spec.invariants.push(InvariantSpec::file_pristine("/ghost/a"));
        spec.invariants.push(InvariantSpec::file_pristine("/ghost/b"));
        let scn = scenario(spec, vec![]);
        let a = lint_scenario(&scn);
        let b = lint_scenario(&scn);
        assert_eq!(a, b);
        let text = a.render_text();
        assert!(text.contains("/ghost/a") && text.contains("/ghost/b"));
        assert!(text.starts_with("lint test-scn: 2 error(s)"));
        let json = serde_json::to_string(&a).expect("reports serialize");
        assert!(json.contains("EPA0001"));
    }
}
