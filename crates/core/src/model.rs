//! The Environment–Application Interaction (EAI) taxonomy.
//!
//! The paper's fault model (§2.3) divides environment faults by *how they
//! reach the application*:
//!
//! * **Indirect** faults enter as input and propagate through internal
//!   entities — classified by input origin (paper §2.3.1, Table 2);
//! * **Direct** faults stay in the environment and strike at interaction
//!   time — classified by environment entity and attribute (paper §2.3.2,
//!   Tables 3, 4 and 6);
//! * **Other** covers code faults with no environmental trigger.

use std::fmt;

use serde::{Deserialize, Serialize};

use epa_sandbox::trace::InputSemantic;

/// Origin of an indirect environment fault (paper Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IndirectKind {
    /// Input typed or passed by the user (argv, stdin).
    UserInput,
    /// Environment variables.
    EnvironmentVariable,
    /// Input read from the file system (configuration content).
    FileSystemInput,
    /// Input received from the network.
    NetworkInput,
    /// Input received from another process.
    ProcessInput,
}

impl IndirectKind {
    /// All kinds, in the paper's column order.
    pub const ALL: [IndirectKind; 5] = [
        IndirectKind::UserInput,
        IndirectKind::EnvironmentVariable,
        IndirectKind::FileSystemInput,
        IndirectKind::NetworkInput,
        IndirectKind::ProcessInput,
    ];
}

impl fmt::Display for IndirectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IndirectKind::UserInput => "user input",
            IndirectKind::EnvironmentVariable => "environment variable",
            IndirectKind::FileSystemInput => "file system input",
            IndirectKind::NetworkInput => "network input",
            IndirectKind::ProcessInput => "process input",
        };
        f.write_str(s)
    }
}

/// File-system entity attributes (paper Tables 4 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FsAttribute {
    /// Whether the file exists.
    Existence,
    /// Who owns it.
    Ownership,
    /// Its permission bits.
    Permission,
    /// Whether it is (or becomes) a symbolic link, and where that points.
    SymbolicLink,
    /// Whether its content stays what the program assumes (file invariance).
    ContentInvariance,
    /// Whether its name keeps denoting the same object (TOCTTOU).
    NameInvariance,
    /// The working directory the program runs in.
    WorkingDirectory,
}

impl FsAttribute {
    /// All attributes, in Table 6 row order.
    pub const ALL: [FsAttribute; 7] = [
        FsAttribute::Existence,
        FsAttribute::Ownership,
        FsAttribute::Permission,
        FsAttribute::SymbolicLink,
        FsAttribute::ContentInvariance,
        FsAttribute::NameInvariance,
        FsAttribute::WorkingDirectory,
    ];

    /// The Table 4 column this attribute is counted under (content and name
    /// invariance share the "file invariance" column).
    pub fn table4_column(self) -> &'static str {
        match self {
            FsAttribute::Existence => "file existence",
            FsAttribute::SymbolicLink => "symbolic link",
            FsAttribute::Permission => "permission",
            FsAttribute::Ownership => "ownership",
            FsAttribute::ContentInvariance | FsAttribute::NameInvariance => "file invariance",
            FsAttribute::WorkingDirectory => "working directory",
        }
    }
}

impl fmt::Display for FsAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsAttribute::Existence => "existence",
            FsAttribute::Ownership => "ownership",
            FsAttribute::Permission => "permission",
            FsAttribute::SymbolicLink => "symbolic link",
            FsAttribute::ContentInvariance => "content invariance",
            FsAttribute::NameInvariance => "name invariance",
            FsAttribute::WorkingDirectory => "working directory",
        };
        f.write_str(s)
    }
}

/// Network entity attributes (paper Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetAttribute {
    /// Whether a message really comes from where it claims.
    MessageAuthenticity,
    /// Whether the peer follows the protocol (steps omitted/added/reordered).
    Protocol,
    /// Whether the socket is shared with another process.
    Socket,
    /// Whether the asked-for service is available.
    ServiceAvailability,
    /// Whether the interacting entity is trusted.
    EntityTrust,
}

impl fmt::Display for NetAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetAttribute::MessageAuthenticity => "message authenticity",
            NetAttribute::Protocol => "protocol",
            NetAttribute::Socket => "socket",
            NetAttribute::ServiceAvailability => "service availability",
            NetAttribute::EntityTrust => "entity trustability",
        };
        f.write_str(s)
    }
}

/// Process entity attributes (paper Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProcAttribute {
    /// Whether an IPC message really comes from where it claims.
    MessageAuthenticity,
    /// Whether the peer process is trusted.
    Trust,
    /// Whether the peer service is available.
    ServiceAvailability,
}

impl fmt::Display for ProcAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcAttribute::MessageAuthenticity => "message authenticity",
            ProcAttribute::Trust => "process trustability",
            ProcAttribute::ServiceAvailability => "service availability",
        };
        f.write_str(s)
    }
}

/// Registry entity attributes — the paper's §4.2 extension of the model to
/// Windows NT. Not in Table 6 (which predates the NT study) but required to
/// express the registry case study; documented in `DESIGN.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegAttribute {
    /// Whether the key's ACL protects it from arbitrary writers.
    AclProtection,
    /// Whether the stored value stays what the module assumes.
    ValueInvariance,
}

impl fmt::Display for RegAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegAttribute::AclProtection => "ACL protection",
            RegAttribute::ValueInvariance => "value invariance",
        };
        f.write_str(s)
    }
}

/// Entity and attribute of a direct environment fault (paper Table 3
/// columns, refined by Tables 4 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DirectKind {
    /// File-system entity.
    FileSystem(FsAttribute),
    /// Network entity.
    Network(NetAttribute),
    /// Process entity.
    Process(ProcAttribute),
    /// Registry entity (NT extension).
    Registry(RegAttribute),
}

impl DirectKind {
    /// The Table 3 column this kind is counted under. The registry extension
    /// is counted with the file system, as the paper's §4.2 treats registry
    /// values as named persistent objects.
    pub fn table3_column(self) -> &'static str {
        match self {
            DirectKind::FileSystem(_) | DirectKind::Registry(_) => "file system",
            DirectKind::Network(_) => "network",
            DirectKind::Process(_) => "process",
        }
    }
}

impl fmt::Display for DirectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirectKind::FileSystem(a) => write!(f, "file system / {a}"),
            DirectKind::Network(a) => write!(f, "network / {a}"),
            DirectKind::Process(a) => write!(f, "process / {a}"),
            DirectKind::Registry(a) => write!(f, "registry / {a}"),
        }
    }
}

/// Top-level EAI classification (paper Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EaiCategory {
    /// Faults that propagate via internal entities.
    Indirect(IndirectKind),
    /// Faults that act through environment entities.
    Direct(DirectKind),
    /// Code faults with no environmental trigger.
    Other,
}

impl EaiCategory {
    /// True for indirect faults.
    pub fn is_indirect(&self) -> bool {
        matches!(self, EaiCategory::Indirect(_))
    }

    /// True for direct faults.
    pub fn is_direct(&self) -> bool {
        matches!(self, EaiCategory::Direct(_))
    }
}

impl fmt::Display for EaiCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EaiCategory::Indirect(k) => write!(f, "indirect / {k}"),
            EaiCategory::Direct(k) => write!(f, "direct / {k}"),
            EaiCategory::Other => f.write_str("other"),
        }
    }
}

/// Maps an input's semantics to the indirect-fault origin it belongs to
/// (the Table 5 leftmost column).
pub fn indirect_kind_of(semantic: InputSemantic) -> IndirectKind {
    match semantic {
        InputSemantic::UserFileName | InputSemantic::UserCommand => IndirectKind::UserInput,
        InputSemantic::EnvPathList | InputSemantic::EnvPermMask | InputSemantic::EnvValue => {
            IndirectKind::EnvironmentVariable
        }
        InputSemantic::FsFileName | InputSemantic::FsFileExtension => IndirectKind::FileSystemInput,
        InputSemantic::NetIpAddr
        | InputSemantic::NetPacket
        | InputSemantic::NetHostName
        | InputSemantic::NetDnsReply => IndirectKind::NetworkInput,
        InputSemantic::ProcMessage => IndirectKind::ProcessInput,
        InputSemantic::Opaque => IndirectKind::UserInput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantics_map_to_paper_columns() {
        assert_eq!(indirect_kind_of(InputSemantic::UserFileName), IndirectKind::UserInput);
        assert_eq!(
            indirect_kind_of(InputSemantic::EnvPathList),
            IndirectKind::EnvironmentVariable
        );
        assert_eq!(
            indirect_kind_of(InputSemantic::FsFileName),
            IndirectKind::FileSystemInput
        );
        assert_eq!(indirect_kind_of(InputSemantic::NetDnsReply), IndirectKind::NetworkInput);
        assert_eq!(indirect_kind_of(InputSemantic::ProcMessage), IndirectKind::ProcessInput);
    }

    #[test]
    fn table4_columns_cover_all_attributes() {
        let mut cols: Vec<&str> = FsAttribute::ALL.iter().map(|a| a.table4_column()).collect();
        cols.sort();
        cols.dedup();
        assert_eq!(cols.len(), 6, "Table 4 has six columns");
    }

    #[test]
    fn display_is_informative() {
        let c = EaiCategory::Direct(DirectKind::FileSystem(FsAttribute::SymbolicLink));
        assert_eq!(c.to_string(), "direct / file system / symbolic link");
        assert!(EaiCategory::Indirect(IndirectKind::UserInput).is_indirect());
        assert!(c.is_direct());
    }

    #[test]
    fn registry_counts_with_file_system_in_table3() {
        assert_eq!(
            DirectKind::Registry(RegAttribute::AclProtection).table3_column(),
            "file system"
        );
        assert_eq!(DirectKind::Network(NetAttribute::Protocol).table3_column(), "network");
    }
}
