//! Repository automation tasks, invoked as `cargo xtask <task>` (the
//! alias lives in `.cargo/config.toml`).
//!
//! # `lint-sync`
//!
//! The engine's concurrency layer goes through the `shim_sync` facade so
//! that every lock, thread, channel, and atomic is model-checkable under
//! `--features model-check` (see `crates/compat/shim-sync`). A direct
//! `std::sync` or `std::thread` use in `epa-core` or `epa-sandbox`
//! silently escapes the checker — the schedule explorer never sees the
//! operation, so races through it are unreachable by construction. This
//! task scans those crates' sources and fails CI on any direct use
//! outside the allowlist. Comments are exempt (docs legitimately name
//! the std types the facade mirrors).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The source roots that must route all synchronization through the
/// facade. Tests and benches under `tests/`/`benches/` are exempt: they
/// drive real OS threads on purpose.
const SCAN_ROOTS: &[&str] = &["crates/core/src", "crates/sandbox/src"];

/// Tokens that indicate a bypass of the facade.
const FORBIDDEN: &[&str] = &["std::sync", "std::thread"];

/// Sanctioned direct uses: `(path suffix, token)` pairs. An entry must
/// carry a comment explaining why the facade cannot serve that site.
/// Currently empty — the whole engine goes through the shim.
const ALLOW: &[(&str, &str)] = &[];

/// Repo-relative paths that MUST be among the scanned files: modules that
/// do real synchronization, whose silent move out of [`SCAN_ROOTS`] would
/// drop facade coverage without failing anything. The result-store layer
/// is here because its backends are called from suite workers — its
/// `MemoryStore` mutex and the cache's claim handoff must stay visible to
/// the model checker.
const REQUIRED_COVERED: &[&str] = &[
    "crates/core/src/engine/planner.rs",
    "crates/core/src/store/mod.rs",
    "crates/core/src/store/disk.rs",
    "crates/core/src/store/manifest.rs",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-sync") => lint_sync(),
        Some(task) => {
            eprintln!("xtask: unknown task `{task}` (available: lint-sync)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <task>\n\ntasks:\n  lint-sync  forbid direct std::sync/std::thread outside the shim_sync facade");
            ExitCode::FAILURE
        }
    }
}

/// One direct-use hit: file, 1-based line, the token found.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    file: PathBuf,
    line: usize,
    token: &'static str,
}

fn lint_sync() -> ExitCode {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    for root in SCAN_ROOTS {
        let dir = repo.join(root);
        assert!(
            dir.is_dir(),
            "scan root {} missing — tree layout changed?",
            dir.display()
        );
        collect_rs_files(&dir, &mut files);
    }
    // A soundness floor: if a refactor moves the sources and the scan
    // silently covers nothing, that must fail loudly, not pass.
    assert!(
        files.len() >= 10,
        "lint-sync scanned only {} files — scan roots stale?",
        files.len()
    );
    files.sort();
    let missing = missing_required(&files);
    assert!(
        missing.is_empty(),
        "lint-sync lost coverage of required module(s) {} — moved out of the scan roots?",
        missing.join(", ")
    );

    let mut violations = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let rel = file.strip_prefix(&repo).unwrap_or(file);
        violations.extend(scan_source(rel, &text));
    }

    if violations.is_empty() {
        println!(
            "lint-sync OK: {} files in {} scanned, no direct std::sync/std::thread use",
            files.len(),
            SCAN_ROOTS.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!(
                "lint-sync: {}:{}: direct `{}` use — route it through `shim_sync` so the \
                 model checker can see it (or allowlist it in crates/xtask/src/main.rs with \
                 a justification)",
                v.file.display(),
                v.line,
                v.token
            );
        }
        eprintln!("lint-sync: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The [`REQUIRED_COVERED`] entries not present in `files` (compared by
/// `/`-normalized path suffix; `files` holds absolute scan results).
fn missing_required(files: &[PathBuf]) -> Vec<&'static str> {
    REQUIRED_COVERED
        .iter()
        .copied()
        .filter(|req| {
            !files
                .iter()
                .any(|f| f.to_string_lossy().replace('\\', "/").ends_with(req))
        })
        .collect()
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("directory entry").path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans one file's text, honoring comments and the allowlist.
fn scan_source(rel: &Path, text: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut in_block_comment = false;
    for (idx, raw) in text.lines().enumerate() {
        let code = strip_comments(raw, &mut in_block_comment);
        for &token in FORBIDDEN {
            if !code.contains(token) {
                continue;
            }
            let allowed = ALLOW
                .iter()
                .any(|(suffix, tok)| *tok == token && rel.to_string_lossy().ends_with(suffix));
            if !allowed {
                violations.push(Violation {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    token,
                });
            }
        }
    }
    violations
}

/// Returns `line` with `//` line comments and `/* ... */` block-comment
/// spans removed, tracking block state across lines. String literals are
/// not parsed — a forbidden token inside a string is still flagged, which
/// errs on the loud side.
fn strip_comments(line: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    loop {
        if *in_block {
            match rest.find("*/") {
                Some(end) => {
                    *in_block = false;
                    rest = &rest[end + 2..];
                }
                None => return out,
            }
        }
        let line_at = rest.find("//");
        let block_at = rest.find("/*");
        match (line_at, block_at) {
            (Some(l), None) => {
                out.push_str(&rest[..l]);
                return out;
            }
            (Some(l), Some(b)) if l < b => {
                out.push_str(&rest[..l]);
                return out;
            }
            (_, Some(b)) => {
                out.push_str(&rest[..b]);
                *in_block = true;
                rest = &rest[b + 2..];
            }
            (None, None) => {
                out.push_str(rest);
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(text: &str) -> Vec<(usize, &'static str)> {
        scan_source(Path::new("crates/core/src/x.rs"), text)
            .into_iter()
            .map(|v| (v.line, v.token))
            .collect()
    }

    #[test]
    fn direct_uses_are_flagged_with_line_numbers() {
        let text = "use std::sync::Mutex;\nfn f() {}\nstd::thread::spawn(|| {});\n";
        assert_eq!(hits(text), vec![(1, "std::sync"), (3, "std::thread")]);
    }

    #[test]
    fn comments_are_exempt() {
        let text = "// std::sync is mirrored by the facade\n\
                    /// docs may say std::thread\n\
                    /* block std::sync\nspanning std::thread lines */ let x = 1;\n\
                    let y = 2; // trailing std::sync note\n";
        assert_eq!(hits(text), vec![]);
    }

    #[test]
    fn code_after_a_block_comment_is_still_scanned() {
        let text = "/* doc */ use std::sync::Arc;\n";
        assert_eq!(hits(text), vec![(1, "std::sync")]);
    }

    #[test]
    fn the_allowlist_is_keyed_by_path_suffix_and_token() {
        // No current entries, so even the facade-adjacent names flag.
        let text = "use std::sync::Mutex as StdMutex;\n";
        assert_eq!(hits(text).len(), 1);
    }

    #[test]
    fn required_coverage_is_reported_by_suffix_match() {
        let scanned = vec![
            PathBuf::from("/repo/crates/core/src/engine/planner.rs"),
            PathBuf::from("/repo/crates/core/src/store/mod.rs"),
            PathBuf::from("/repo/crates/core/src/store/disk.rs"),
        ];
        let missing = missing_required(&scanned);
        assert_eq!(missing, vec!["crates/core/src/store/manifest.rs"]);
        assert!(missing_required(&[]).len() == REQUIRED_COVERED.len());
    }

    #[test]
    fn required_modules_live_under_the_scan_roots() {
        // If a required module moves to a crate outside the scan roots,
        // this list must move with it — the assertion in `lint_sync` would
        // otherwise fail every CI run without explaining the layout shift.
        for req in REQUIRED_COVERED {
            assert!(
                SCAN_ROOTS.iter().any(|root| req.starts_with(root)),
                "{req} is not under any scan root"
            );
        }
    }
}
