//! Model-check personality: the same `std::sync` surface, but every
//! operation is a scheduling point of the active
//! [`crate::model`] execution. Outside an execution (no thread-local
//! context) every type forwards straight to the std primitive it wraps,
//! so ordinary tests behave normally even with the feature enabled.
//!
//! The exclusivity trick that keeps this crate `unsafe`-free: data
//! lives inside a real std primitive, and the *model* lock guarantees
//! at most one model thread holds it, so the inner `try_lock` always
//! succeeds (poison aside) — the std primitive provides storage and
//! `Send`/`Sync` soundness, the model provides the schedule.

use std::sync::Condvar as StdCondvar;
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;
use std::sync::OnceLock as StdOnceLock;
use std::sync::RwLock as StdRwLock;
use std::sync::RwLockReadGuard as StdRwLockReadGuard;
use std::sync::RwLockWriteGuard as StdRwLockWriteGuard;

pub use std::sync::{Arc, LockResult, PoisonError, TryLockError, TryLockResult, WaitTimeoutResult, Weak};

use crate::model::{ctx, Ctx, Handle};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware `std::sync::Mutex`.
pub struct Mutex<T> {
    label: &'static str,
    handle: Handle,
    inner: StdMutex<T>,
}

/// Guard for [`Mutex`]; releases the model lock on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<Ctx>,
}

impl<T> Mutex<T> {
    /// Creates a mutex (model label `"Mutex"`).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex::labeled("Mutex", value)
    }

    /// Creates a mutex with a diagnostic label for model reports.
    pub const fn labeled(label: &'static str, value: T) -> Mutex<T> {
        Mutex {
            label,
            handle: Handle::new(),
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock (a scheduling point under model check).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(c) = ctx() {
            c.exec.lock(c.tid, &self.handle, self.label);
            self.relock(Some(c))
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }

    /// Re-take the inner std lock after the model granted exclusivity.
    /// `WouldBlock` is only reachable in teardown (an aborted schedule
    /// unwinding several threads at once); block on the real lock then.
    fn relock(&self, model: Option<Ctx>) -> LockResult<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(TryLockError::Poisoned(p)) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
            Err(TryLockError::WouldBlock) => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model,
                })),
            },
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the std lock")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the std lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock before the model marks the mutex free,
        // so the next model holder's try_lock succeeds.
        self.inner = None;
        if let Some(c) = self.model.take() {
            c.exec.unlock(c.tid, &self.lock.handle, self.lock.label);
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Model-aware `std::sync::Condvar`.
pub struct Condvar {
    label: &'static str,
    handle: Handle,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a condvar (model label `"Condvar"`).
    pub const fn new() -> Condvar {
        Condvar::labeled("Condvar")
    }

    /// Creates a condvar with a diagnostic label for model reports.
    pub const fn labeled(label: &'static str) -> Condvar {
        Condvar {
            label,
            handle: Handle::new(),
            inner: StdCondvar::new(),
        }
    }

    /// Blocks on the condvar, releasing (and on wake reacquiring) the
    /// guard's mutex. Under model check the park/wake is a scheduler
    /// event; a schedule where every live thread parks here is reported
    /// as a lost wakeup.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let mut guard = guard;
        let model = guard.model.take();
        let inner = guard.inner.take();
        std::mem::forget(guard);
        match model {
            None => {
                let std_guard = inner.expect("guard holds the std lock");
                match self.inner.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
            Some(c) => {
                drop(inner);
                c.exec
                    .condvar_wait(c.tid, &self.handle, self.label, &lock.handle, lock.label);
                lock.relock(Some(c))
            }
        }
    }

    /// Wakes one waiter (deterministically the longest-waiting one
    /// under model check).
    pub fn notify_one(&self) {
        if let Some(c) = ctx() {
            c.exec.condvar_notify(c.tid, &self.handle, self.label, false);
        }
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if let Some(c) = ctx() {
            c.exec.condvar_notify(c.tid, &self.handle, self.label, true);
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Model-aware `std::sync::RwLock`.
pub struct RwLock<T> {
    label: &'static str,
    handle: Handle,
    inner: StdRwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockReadGuard<'a, T>>,
    model: Option<Ctx>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdRwLockWriteGuard<'a, T>>,
    model: Option<Ctx>,
}

impl<T> RwLock<T> {
    /// Creates an rwlock (model label `"RwLock"`).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock::labeled("RwLock", value)
    }

    /// Creates an rwlock with a diagnostic label for model reports.
    pub const fn labeled(label: &'static str, value: T) -> RwLock<T> {
        RwLock {
            label,
            handle: Handle::new(),
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires a shared lock.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some(c) = ctx() {
            c.exec.lock_shared(c.tid, &self.handle, self.label);
            match self.inner.try_read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: Some(c),
                }),
                Err(TryLockError::Poisoned(p)) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: Some(c),
                })),
                Err(TryLockError::WouldBlock) => match self.inner.read() {
                    Ok(g) => Ok(RwLockReadGuard {
                        lock: self,
                        inner: Some(g),
                        model: Some(c),
                    }),
                    Err(p) => Err(PoisonError::new(RwLockReadGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        model: Some(c),
                    })),
                },
            }
        } else {
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Acquires the exclusive lock.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some(c) = ctx() {
            c.exec.lock(c.tid, &self.handle, self.label);
            match self.inner.try_write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: Some(c),
                }),
                Err(TryLockError::Poisoned(p)) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: Some(c),
                })),
                Err(TryLockError::WouldBlock) => match self.inner.write() {
                    Ok(g) => Ok(RwLockWriteGuard {
                        lock: self,
                        inner: Some(g),
                        model: Some(c),
                    }),
                    Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        model: Some(c),
                    })),
                },
            }
        } else {
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }
    }

    /// Consumes the rwlock, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl<'a, T> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the std lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(c) = self.model.take() {
            c.exec.unlock_shared(c.tid, &self.lock.handle, self.lock.label);
        }
    }
}

impl<'a, T> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the std lock")
    }
}

impl<'a, T> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the std lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(c) = self.model.take() {
            c.exec.unlock(c.tid, &self.lock.handle, self.lock.label);
        }
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// Model-aware `std::sync::OnceLock`. Initialization runs in an
/// exclusive model section on the cell's handle; observers take an
/// acquire happens-before edge from the publication.
pub struct OnceLock<T> {
    handle: Handle,
    inner: StdOnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub const fn new() -> OnceLock<T> {
        OnceLock {
            handle: Handle::new(),
            inner: StdOnceLock::new(),
        }
    }

    /// The value, if initialized (acquire edge under model check).
    pub fn get(&self) -> Option<&T> {
        if let Some(c) = ctx() {
            c.exec.atomic_op(c.tid, &self.handle, "OnceLock", true, false);
        }
        self.inner.get()
    }

    /// Sets the value if empty.
    pub fn set(&self, value: T) -> Result<(), T> {
        if let Some(c) = ctx() {
            c.exec.lock(c.tid, &self.handle, "OnceLock");
            let result = self.inner.set(value);
            c.exec.unlock(c.tid, &self.handle, "OnceLock");
            result
        } else {
            self.inner.set(value)
        }
    }

    /// Gets the value, initializing it with `f` if empty. Under model
    /// check the winner runs `f` inside an exclusive section and its
    /// publication happens-before every later observation.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        if let Some(c) = ctx() {
            c.exec.atomic_op(c.tid, &self.handle, "OnceLock", true, false);
            if let Some(v) = self.inner.get() {
                return v;
            }
            c.exec.lock(c.tid, &self.handle, "OnceLock");
            let v = self.inner.get_or_init(f);
            c.exec.unlock(c.tid, &self.handle, "OnceLock");
            v
        } else {
            self.inner.get_or_init(f)
        }
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> Option<T> {
        self.inner.into_inner()
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> OnceLock<T> {
        OnceLock::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("OnceLock").field(&self.inner.get()).finish()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Model-aware atomics. Value semantics come from the wrapped std
/// atomic (always `SeqCst` internally — schedules, not hardware
/// reorderings, are the state space being explored); the declared
/// `Ordering` of each call decides which happens-before clock edges the
/// model records (acquire joins, release publishes).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::model::ctx;
    use crate::model::Handle;

    fn is_acquire(o: Ordering) -> bool {
        matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(o: Ordering) -> bool {
        matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    macro_rules! int_atomic {
        ($Name:ident, $Std:ident, $prim:ty) => {
            /// Model-aware atomic integer.
            pub struct $Name {
                handle: Handle,
                inner: std::sync::atomic::$Std,
            }

            impl $Name {
                /// Creates a new atomic.
                pub const fn new(v: $prim) -> $Name {
                    $Name {
                        handle: Handle::new(),
                        inner: std::sync::atomic::$Std::new(v),
                    }
                }

                fn op(&self, acquire: bool, release: bool) {
                    if let Some(c) = ctx() {
                        c.exec
                            .atomic_op(c.tid, &self.handle, stringify!($Name), acquire, release);
                    }
                }

                /// Atomic load.
                pub fn load(&self, order: Ordering) -> $prim {
                    self.op(is_acquire(order), false);
                    self.inner.load(Ordering::SeqCst)
                }

                /// Atomic store.
                pub fn store(&self, v: $prim, order: Ordering) {
                    self.op(false, is_release(order));
                    self.inner.store(v, Ordering::SeqCst);
                }

                /// Atomic swap.
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    self.op(is_acquire(order), is_release(order));
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    self.op(is_acquire(order), is_release(order));
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    self.op(is_acquire(order), is_release(order));
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Atomic max, returning the previous value.
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    self.op(is_acquire(order), is_release(order));
                    self.inner.fetch_max(v, Ordering::SeqCst)
                }

                /// Atomic min, returning the previous value.
                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    self.op(is_acquire(order), is_release(order));
                    self.inner.fetch_min(v, Ordering::SeqCst)
                }

                /// Atomic compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.op(is_acquire(success) || is_acquire(failure), is_release(success));
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }
            }

            impl Default for $Name {
                fn default() -> $Name {
                    $Name::new(0)
                }
            }

            impl std::fmt::Debug for $Name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    std::fmt::Debug::fmt(&self.inner, f)
                }
            }
        };
    }

    int_atomic!(AtomicUsize, AtomicUsize, usize);
    int_atomic!(AtomicU64, AtomicU64, u64);
    int_atomic!(AtomicU32, AtomicU32, u32);
    int_atomic!(AtomicI64, AtomicI64, i64);

    /// Model-aware `AtomicBool`.
    pub struct AtomicBool {
        handle: Handle,
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic bool.
        pub const fn new(v: bool) -> AtomicBool {
            AtomicBool {
                handle: Handle::new(),
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        fn op(&self, acquire: bool, release: bool) {
            if let Some(c) = ctx() {
                c.exec.atomic_op(c.tid, &self.handle, "AtomicBool", acquire, release);
            }
        }

        /// Atomic load.
        pub fn load(&self, order: Ordering) -> bool {
            self.op(is_acquire(order), false);
            self.inner.load(Ordering::SeqCst)
        }

        /// Atomic store.
        pub fn store(&self, v: bool, order: Ordering) {
            self.op(false, is_release(order));
            self.inner.store(v, Ordering::SeqCst);
        }

        /// Atomic swap.
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            self.op(is_acquire(order), is_release(order));
            self.inner.swap(v, Ordering::SeqCst)
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl Default for AtomicBool {
        fn default() -> AtomicBool {
            AtomicBool::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.inner, f)
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

/// Model-aware `std::sync::mpsc` (the subset the engine uses: unbounded
/// `channel`, `send`, blocking `recv`, iteration, disconnect errors).
/// Messages carry the sender's vector clock, so send → receive is a
/// happens-before edge.
pub mod mpsc {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    use crate::model::{ctx, Handle, VClock};

    struct Chan<T> {
        handle: Handle,
        queue: StdMutex<VecDeque<(T, VClock)>>,
        ready: StdCondvar,
        senders: AtomicUsize,
        rx_gone: AtomicBool,
    }

    /// Sending half.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            handle: Handle::new(),
            queue: StdMutex::new(VecDeque::new()),
            ready: StdCondvar::new(),
            senders: AtomicUsize::new(1),
            rx_gone: AtomicBool::new(false),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Sends a value; `Err` if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.rx_gone.load(Ordering::SeqCst) {
                return Err(SendError(value));
            }
            let clock = if let Some(c) = ctx() {
                c.exec.chan_send(c.tid, &self.chan.handle, "mpsc")
            } else {
                VClock::default()
            };
            self.chan
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back((value, clock));
            self.chan.ready.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                if let Some(c) = ctx() {
                    c.exec.chan_hangup(&self.chan.handle, "mpsc");
                }
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; `Err` once every sender is gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            if let Some(c) = ctx() {
                let chan = &self.chan;
                c.exec
                    .chan_recv(
                        c.tid,
                        &chan.handle,
                        "mpsc",
                        || chan.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front(),
                        || chan.senders.load(Ordering::SeqCst) == 0,
                    )
                    .map_err(|()| RecvError)
            } else {
                let mut queue = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some((value, _)) = queue.pop_front() {
                        return Ok(value);
                    }
                    if self.chan.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvError);
                    }
                    queue = self.chan.ready.wait(queue).unwrap_or_else(PoisonError::into_inner);
                }
            }
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.rx_gone.store(true, Ordering::SeqCst);
        }
    }

    /// Borrowing iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning iterator over received values.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}
