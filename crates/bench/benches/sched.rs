//! The scheduler model-check bench and mutation gate, written to
//! `BENCH_sched.json` (run via `cargo bench -p epa-bench --features
//! model-check --bench sched`; see the CI `sched` job).
//!
//! Two measurements:
//!
//! 1. **Exploration cost of the clean fixtures** — every production
//!    concurrency protocol fixture (executor close/pending queue, result
//!    cache claim + abandon, indexed and expanding plan-order
//!    reassembly) is explored to completion under the preemption bound,
//!    recording interleavings explored and max schedule depth. Any
//!    failure here is a regression in a shipped protocol.
//! 2. **Mutation kill gate** — the two seeded bugs (pending decrement
//!    outside the shard critical section; claim fulfilment dropping the
//!    `Pending` slot before publishing `Ready`) must each be caught
//!    within bounded exploration. `mutants_killed == mutants_seeded` is
//!    asserted here and re-validated by CI from the JSON, so a checker
//!    that silently loses detection power fails the build.
//!
//! Without the `model-check` feature this target compiles to a skip
//! stub, keeping tier-1 `cargo bench` runs free of scheduler overhead.

#[cfg(not(feature = "model-check"))]
fn main() {
    println!("sched bench skipped: build with --features model-check");
}

#[cfg(feature = "model-check")]
fn main() {
    use epa_core::engine::modelcheck;
    use shim_sync::model::{Config, Report};

    /// Mirrors the budget in `tests/model_check.rs`: preemption bound 2
    /// with a step ceiling low enough to flag livelocks quickly.
    fn cfg() -> Config {
        Config {
            max_steps: 5_000,
            ..Config::default()
        }
    }

    fn fixture_row(report: &Report) -> String {
        let failure = report
            .failure
            .as_ref()
            .map_or_else(|| "null".to_owned(), |f| format!("\"{}\"", f.kind.as_str()));
        format!(
            "{{\"name\": \"{}\", \"iterations\": {}, \"max_depth\": {}, \
             \"complete\": {}, \"failure\": {failure}}}",
            report.name, report.iterations, report.max_depth, report.complete
        )
    }

    let fixtures: Vec<Report> = vec![
        modelcheck::check_close_protocol(&cfg()),
        modelcheck::check_claim_protocol(&cfg()),
        modelcheck::check_claim_abandon(&cfg()),
        modelcheck::check_indexed_reassembly(&cfg()),
        modelcheck::check_expanding_reassembly(&cfg()),
    ];
    let mutants: Vec<Report> = vec![
        modelcheck::check_close_protocol_mutant(&cfg()),
        modelcheck::check_claim_protocol_mutant(&cfg()),
    ];

    let clean = fixtures.iter().filter(|r| r.failure.is_none()).count();
    let mutants_seeded = mutants.len();
    let mutants_killed = mutants.iter().filter(|r| r.failure.is_some()).count();

    let fixture_rows: Vec<String> = fixtures.iter().map(fixture_row).collect();
    let mutant_rows: Vec<String> = mutants.iter().map(fixture_row).collect();
    let preemption_bound = Config::default()
        .preemption_bound
        .map_or_else(|| "null".to_owned(), |b| b.to_string());
    let json = format!(
        "{{\n  \"bench\": \"sched\",\n  \"preemption_bound\": {preemption_bound},\n  \
         \"max_steps\": 5000,\n  \
         \"fixtures\": [\n    {}\n  ],\n  \
         \"mutants\": [\n    {}\n  ],\n  \
         \"mutants_seeded\": {mutants_seeded},\n  \"mutants_killed\": {mutants_killed}\n}}\n",
        fixture_rows.join(",\n    "),
        mutant_rows.join(",\n    "),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sched.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} ({clean}/{} fixtures clean; {mutants_killed}/{mutants_seeded} mutants killed)",
            path.display(),
            fixtures.len()
        ),
        Err(e) => eprintln!("BENCH_sched.json not written: {e}"),
    }

    for report in &fixtures {
        report.assert_complete();
    }
    assert_eq!(
        mutants_killed, mutants_seeded,
        "every seeded mutant must be caught within bounded exploration"
    );
}
