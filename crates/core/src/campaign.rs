//! The testing procedure of paper §3.3, as an engine.
//!
//! A [`Campaign`] takes an application, a pristine world, and options, then:
//!
//! 1. runs the application unperturbed and records the execution trace
//!    (steps 1–3: enumerate interaction points and whether they take input);
//! 2. builds the applicable fault list per interaction point from the
//!    catalog (steps 4–5);
//! 3. re-runs the application once per fault from a fresh clone of the
//!    world, injecting the fault before/after the targeted point (steps
//!    6–7) and asking the policy oracle for violations (step 8);
//! 4. reports interaction coverage, fault coverage, and the vulnerability
//!    assessment score (steps 9–10).

use std::collections::{BTreeMap, BTreeSet};
use std::panic::AssertUnwindSafe;

use epa_sandbox::app::Application;
use epa_sandbox::audit::AuditEvent;
use epa_sandbox::cred::Uid;
use epa_sandbox::os::Os;
use epa_sandbox::policy::{InvariantSpec, OracleSet, Verdict};
use epa_sandbox::process::Pid;
use epa_sandbox::syscall::Interceptor;
use epa_sandbox::trace::{SiteId, SiteSummary};

use crate::catalog::{faults_for_site, DirectContext};
use crate::engine::executor::Executor;
use crate::inject::{InjectionHook, InjectionPlan};
use crate::perturb::ConcreteFault;
use crate::report::{CampaignReport, FaultRecord};

/// Everything needed to (re)start the application under test: the pristine
/// world plus the spawn parameters.
#[derive(Debug, Clone)]
pub struct TestSetup {
    /// The pristine world; cloned for every run.
    pub world: Os,
    /// Path of the program file to spawn from (SUID semantics apply); `None`
    /// spawns with the invoker's plain credentials.
    pub program: Option<String>,
    /// Who invokes the program.
    pub invoker: Uid,
    /// Argument vector.
    pub args: Vec<String>,
    /// Environment variables.
    pub env: BTreeMap<String, String>,
    /// Initial working directory.
    pub cwd: String,
    /// Declarative custom invariants; each compiles into a detector
    /// registered on every run's [`OracleSet`] alongside the standard set.
    pub invariants: Vec<InvariantSpec>,
}

impl TestSetup {
    /// Builds a setup with the world's scenario invoker, no program file,
    /// empty args/env, no custom invariants, and `/` as the working
    /// directory.
    pub fn new(world: Os) -> Self {
        let invoker = world.scenario.invoker;
        TestSetup {
            world,
            program: None,
            invoker,
            args: Vec::new(),
            env: BTreeMap::new(),
            cwd: "/".to_string(),
            invariants: Vec::new(),
        }
    }

    /// Sets the program file (enabling SUID).
    #[must_use]
    pub fn program(mut self, path: impl Into<String>) -> Self {
        self.program = Some(path.into());
        self
    }

    /// Sets the argument vector.
    #[must_use]
    pub fn args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Sets one environment variable.
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.env.insert(key.into(), value.into());
        self
    }

    /// Sets the working directory.
    #[must_use]
    pub fn cwd(mut self, dir: impl Into<String>) -> Self {
        self.cwd = dir.into();
        self
    }

    /// Sets the invoking user (defaults to the world's scenario invoker).
    /// System services are spawned by root while the scenario invoker stays
    /// the user on whose behalf the oracle judges outcomes.
    #[must_use]
    pub fn invoker(mut self, uid: Uid) -> Self {
        self.invoker = uid;
        self
    }

    /// Adds a declarative custom invariant to every run's oracle set.
    #[must_use]
    pub fn invariant(mut self, spec: InvariantSpec) -> Self {
        self.invariants.push(spec);
        self
    }

    /// The oracle set a run of this setup evaluates against: the standard
    /// eight detector families plus one detector per declared invariant.
    pub fn oracle(&self) -> OracleSet {
        let mut oracle = OracleSet::standard();
        for spec in &self.invariants {
            oracle.register(spec.detector());
        }
        oracle
    }
}

/// The observable outcome of one run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The world after the run (trace + audit included).
    pub os: Os,
    /// The spawned process, if the spawn succeeded.
    pub pid: Option<Pid>,
    /// Exit status (`None` when the application panicked or never spawned).
    pub exit: Option<i32>,
    /// `Some(panic message)` when the application panicked.
    pub crashed: Option<String>,
    /// Verdicts the oracle pipeline detected, each carrying its evidence
    /// chain (a `Verdict` dereferences to its `Violation`).
    pub violations: Vec<Verdict>,
}

impl RunOutcome {
    /// Whether the application panicked during the run.
    pub fn has_crashed(&self) -> bool {
        self.crashed.is_some()
    }
}

/// Extracts the payload text from a caught panic (`&str` and `String`
/// payloads; anything else gets a placeholder).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs the application once against a clone of the setup's world, with an
/// optional injection hook installed.
///
/// The oracle evaluates **incrementally**: the setup's [`OracleSet`] is
/// subscribed to the run's audit log before the application starts, every
/// recorded event streams straight to the detectors, and the verdicts are
/// collected the moment the run ends — no post-hoc re-scan of the log.
pub fn run_once(setup: &TestSetup, app: &dyn Application, hook: Option<Box<dyn Interceptor>>) -> RunOutcome {
    run_once_impl(setup, app, hook, true)
}

/// As [`run_once`], but with the **retired batch oracle**: the run executes
/// unobserved and the completed audit log is re-scanned afterwards.
///
/// The verdicts are identical to the incremental path by construction (the
/// property tests in `tests/props_oracle.rs` pin this); the function exists
/// as the comparison baseline for `BENCH_oracle.json` and for equivalence
/// testing. New code should use [`run_once`].
pub fn run_once_batch_oracle(
    setup: &TestSetup,
    app: &dyn Application,
    hook: Option<Box<dyn Interceptor>>,
) -> RunOutcome {
    run_once_impl(setup, app, hook, false)
}

fn run_once_impl(
    setup: &TestSetup,
    app: &dyn Application,
    hook: Option<Box<dyn Interceptor>>,
    incremental: bool,
) -> RunOutcome {
    let mut os = setup.world.clone();
    if incremental {
        os.audit.attach_oracle(setup.oracle());
    }
    // Collects the verdicts from whichever path is active: detach the
    // subscribed set, or feed the completed log to a fresh one.
    let verdicts = |os: &mut Os| match os.audit.detach_oracle() {
        Some(mut oracle) => oracle.finish(),
        None => setup.oracle().evaluate_log(&os.audit),
    };
    if let Some(h) = hook {
        os.set_interceptor(h);
    }
    let pid = match os.spawn(
        setup.invoker,
        setup.program.as_deref(),
        setup.args.clone(),
        setup.env.clone(),
        &setup.cwd,
    ) {
        Ok(p) => p,
        Err(_) => {
            let violations = verdicts(&mut os);
            return RunOutcome {
                os,
                pid: None,
                exit: None,
                crashed: None,
                violations,
            };
        }
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| app.run(&mut os, pid)));
    let (exit, crashed) = match result {
        Ok(code) => (Some(code), None),
        Err(payload) => (None, Some(panic_text(payload.as_ref()))),
    };
    if let Some(c) = exit {
        os.set_exit(pid, c);
    }
    let violations = verdicts(&mut os);
    RunOutcome {
        os,
        pid: Some(pid),
        exit,
        crashed,
        violations,
    }
}

/// Campaign tuning knobs.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Perturb only these sites (by id); `None` perturbs all.
    pub site_filter: Option<BTreeSet<SiteId>>,
    /// Perturb at most this many sites (in first-execution order).
    pub max_sites: Option<usize>,
    /// Inject at most this many faults per site.
    pub max_faults_per_site: Option<usize>,
    /// Strike at most this many occurrences of each site (paper §3.3
    /// perturbs *each occurrence* of each interaction point; re-accessed
    /// objects — the lpr TOCTTOU class — only misbehave at later hits).
    /// Occurrences past the first replan only the occurrence-sensitive
    /// faults ([`ConcreteFault::occurrence_sensitive`]). The default of 1
    /// preserves the historical first-hit-only plans; use
    /// `usize::MAX` to cover every traced occurrence.
    pub max_occurrences_per_site: usize,
    /// Run injected experiments on worker threads.
    pub parallel: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            site_filter: None,
            max_sites: None,
            max_faults_per_site: None,
            max_occurrences_per_site: 1,
            parallel: false,
        }
    }
}

/// One interaction point with its planned fault list.
#[derive(Debug, Clone)]
pub struct PlannedSite {
    /// The traced site.
    pub summary: SiteSummary,
    /// Whether the options include it in the perturbation set.
    pub included: bool,
    /// How many occurrences of the site the plan strikes (the traced hit
    /// count capped by [`CampaignOptions::max_occurrences_per_site`]).
    pub occurrences: usize,
    /// The applicable faults (already truncated to any per-site limit).
    pub faults: Vec<ConcreteFault>,
}

impl PlannedSite {
    /// The `(site, occurrence, fault)` jobs this site contributes, in
    /// deterministic order: occurrence 0 gets the full fault list, later
    /// occurrences only the occurrence-sensitive faults (re-striking a
    /// semantics-addressed indirect fault would duplicate the first run).
    pub fn jobs(&self) -> Vec<InjectionPlan> {
        let mut out = Vec::new();
        if !self.included {
            return out;
        }
        for occurrence in 0..self.occurrences.max(1) {
            for fault in &self.faults {
                if occurrence > 0 && !fault.occurrence_sensitive() {
                    continue;
                }
                out.push(InjectionPlan {
                    site: self.summary.site.clone(),
                    occurrence,
                    fault: fault.clone(),
                });
            }
        }
        out
    }
}

/// The campaign plan: the clean run plus the per-site fault lists.
#[derive(Debug)]
pub struct CampaignPlan {
    /// The unperturbed run.
    pub clean: RunOutcome,
    /// Every traced site, included or not.
    pub sites: Vec<PlannedSite>,
}

impl CampaignPlan {
    /// Total injection jobs across included sites (occurrence-aware:
    /// occurrences past the first contribute their occurrence-sensitive
    /// faults).
    pub fn total_faults(&self) -> usize {
        self.sites
            .iter()
            .filter(|s| s.included)
            .map(|s| {
                let sensitive = s.faults.iter().filter(|f| f.occurrence_sensitive()).count();
                s.faults.len() + (s.occurrences.max(1) - 1) * sensitive
            })
            .sum()
    }

    /// The flat list of injections to perform, in plan order.
    pub fn jobs(&self) -> Vec<InjectionPlan> {
        self.sites.iter().flat_map(PlannedSite::jobs).collect()
    }
}

/// The methodology engine.
///
/// This is the original single-campaign driver. New code should go through
/// the [`crate::engine`] facade — [`crate::engine::Session`] freezes one
/// pristine world and runs campaigns from cheap copy-on-write snapshots,
/// and [`crate::engine::Suite`] batches many applications — but the shim is
/// kept (and tested) so existing callers keep reproducing the paper's
/// numbers unchanged.
pub struct Campaign<'a> {
    app: &'a dyn Application,
    setup: &'a TestSetup,
    options: CampaignOptions,
}

impl<'a> Campaign<'a> {
    /// Builds a campaign with default options.
    #[deprecated(
        since = "0.2.0",
        note = "use `epa_core::engine::Session` (or `Suite` for batches) instead"
    )]
    pub fn new(app: &'a dyn Application, setup: &'a TestSetup) -> Self {
        Campaign {
            app,
            setup,
            options: CampaignOptions::default(),
        }
    }

    /// As [`Campaign::new`], without the deprecation: the engine layer
    /// builds campaigns internally.
    pub(crate) fn build(app: &'a dyn Application, setup: &'a TestSetup, options: CampaignOptions) -> Self {
        Campaign { app, setup, options }
    }

    /// Replaces the options.
    #[must_use]
    pub fn with_options(mut self, options: CampaignOptions) -> Self {
        self.options = options;
        self
    }

    /// Steps 1–5: trace the application and build the fault plan.
    pub fn plan(&self) -> CampaignPlan {
        let clean = run_once(self.setup, self.app, None);
        let summaries = clean.os.trace.sites();
        let reaccessed = clean.os.trace.reaccessed_files();
        let mut exec_resolutions: BTreeMap<String, String> = BTreeMap::new();
        for ev in clean.os.audit.events() {
            if let AuditEvent::Exec {
                requested, resolved, ..
            } = ev
            {
                exec_resolutions
                    .entry(requested.clone())
                    .or_insert_with(|| resolved.clone());
            }
        }
        let ctx = DirectContext {
            scenario: &self.setup.world.scenario,
            reaccessed: &reaccessed,
            exec_resolutions: &exec_resolutions,
            cwd: &self.setup.cwd,
        };
        let mut sites = Vec::new();
        let mut taken = 0usize;
        for summary in summaries {
            let mut included = match &self.options.site_filter {
                Some(filter) => filter.contains(&summary.site),
                None => true,
            };
            if included {
                if let Some(max) = self.options.max_sites {
                    if taken >= max {
                        included = false;
                    }
                }
            }
            let mut faults = faults_for_site(&summary, &ctx);
            if let Some(limit) = self.options.max_faults_per_site {
                faults.truncate(limit);
            }
            if included && !faults.is_empty() {
                taken += 1;
            }
            let occurrences = summary.hits.min(self.options.max_occurrences_per_site).max(1);
            sites.push(PlannedSite {
                summary,
                included,
                occurrences,
                faults,
            });
        }
        CampaignPlan { clean, sites }
    }

    pub(crate) fn run_job(&self, job: &InjectionPlan) -> FaultRecord {
        let (hook, fired) = InjectionHook::new(job.clone());
        let outcome = run_once(self.setup, self.app, Some(Box::new(hook)));
        FaultRecord {
            site: job.site.to_string(),
            occurrence: job.occurrence,
            fault_id: job.fault.id.clone(),
            category: job.fault.category,
            description: job.fault.description.clone(),
            applied: fired.get(),
            exit: outcome.exit,
            crashed: outcome.crashed,
            audit_events: outcome.os.audit.len(),
            violations: outcome.violations,
        }
    }

    /// Steps 6–10: execute the plan and report.
    pub fn execute(&self) -> CampaignReport {
        let plan = self.plan();
        self.execute_plan(&plan)
    }

    /// The paper's §3.3 step 9: inject site by site, stopping as soon as
    /// the interaction-coverage criterion is satisfied.
    ///
    /// Returns the report of the incremental campaign; its interaction
    /// coverage is the smallest prefix coverage `>= criterion` (or the full
    /// campaign when the criterion is unreachable).
    pub fn execute_until(&self, min_interaction_coverage: f64) -> CampaignReport {
        let full = self.plan();
        let perturbable: Vec<&PlannedSite> = full
            .sites
            .iter()
            .filter(|s| s.included && !s.faults.is_empty())
            .collect();
        let total = full.sites.iter().filter(|s| !s.faults.is_empty()).count();
        let executor = self.executor();
        let mut records = Vec::new();
        let mut covered = 0usize;
        for site in &perturbable {
            // Each site's batch goes through the executor, so the
            // incremental §3.3 criterion run honors `options.parallel`
            // too; records stay in plan order within the batch.
            let jobs = site.jobs();
            if self.options.parallel && jobs.len() > 1 {
                records.extend(executor.run_indexed(&jobs, |_, job| self.run_job(job), &mut |_, _| {}));
            } else {
                records.extend(jobs.iter().map(|job| self.run_job(job)));
            }
            covered += 1;
            if total > 0 && covered as f64 / total as f64 >= min_interaction_coverage {
                break;
            }
        }
        CampaignReport {
            app: self.app.name().to_string(),
            total_sites: total,
            perturbed_sites: covered,
            clean_violations: full.clean.violations.len(),
            records,
        }
    }

    /// Executes a pre-built plan (lets callers inspect or prune it first).
    pub fn execute_plan(&self, plan: &CampaignPlan) -> CampaignReport {
        self.execute_plan_with(plan, &mut |_| {})
    }

    /// As [`Campaign::execute_plan`], additionally streaming every record to
    /// `on_record` as soon as its run completes (completion order; the
    /// returned report is always in plan order). This is the primitive the
    /// engine's [`crate::engine::Suite`] streaming API builds on.
    pub fn execute_plan_with(&self, plan: &CampaignPlan, on_record: &mut dyn FnMut(&FaultRecord)) -> CampaignReport {
        let jobs = plan.jobs();
        let records: Vec<FaultRecord> = if self.options.parallel && jobs.len() > 1 {
            // One shared queue over bounded workers (no static `i % workers`
            // partitioning): idle workers steal the next unclaimed job, and
            // the executor reassembles plan order from the job indices.
            self.executor()
                .run_indexed(&jobs, |_, job| self.run_job(job), &mut |_, r| on_record(r))
        } else {
            jobs.iter()
                .map(|j| {
                    let r = self.run_job(j);
                    on_record(&r);
                    r
                })
                .collect()
        };
        self.report_from(plan, records)
    }

    /// A hardware-bounded pool for this campaign's injected runs.
    fn executor(&self) -> Executor {
        Executor::new()
    }

    /// Folds executed records into the campaign report (shared by the
    /// in-process paths above and the suite-wide pooled executor, which
    /// runs the jobs itself and only needs the bookkeeping).
    pub(crate) fn report_from(&self, plan: &CampaignPlan, records: Vec<FaultRecord>) -> CampaignReport {
        // Interaction points, in the paper's sense, are the places where the
        // catalog has something to perturb — pure-output sites (prints) have
        // no applicable faults and do not count against coverage.
        let perturbable = plan.sites.iter().filter(|s| !s.faults.is_empty()).count();
        let perturbed_sites = plan.sites.iter().filter(|s| s.included && !s.faults.is_empty()).count();
        CampaignReport {
            app: self.app.name().to_string(),
            total_sites: perturbable,
            perturbed_sites,
            clean_violations: plan.clean.violations.len(),
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    // The deprecated `Campaign::new` shim is exercised deliberately: it must
    // keep reproducing the paper's numbers (see also `tests/case_lpr.rs`).
    #![allow(deprecated)]

    use super::*;
    use epa_sandbox::cred::Gid;
    use epa_sandbox::mode::Mode;
    use epa_sandbox::trace::InputSemantic;

    /// A tiny lpr-like program: create a spool file, write the job to it.
    struct MiniLpr;
    impl Application for MiniLpr {
        fn name(&self) -> &'static str {
            "mini-lpr"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let job = match os.sys_arg(pid, "lpr:arg", 0, InputSemantic::UserFileName) {
                Ok(j) => j,
                Err(_) => return 2,
            };
            // Vulnerable: creat without O_EXCL, like the BSD lpr of §3.4.
            if os
                .sys_write_file(pid, "lpr:create", "/var/spool/lpd/job", job, 0o660)
                .is_err()
            {
                let _ = os.sys_print(pid, "lpr:err", "lpr: cannot create spool file\n");
                return 1;
            }
            0
        }
    }

    fn setup() -> TestSetup {
        let mut os = Os::new();
        os.users.add("root", Uid::ROOT, Gid::ROOT, "/root");
        os.users
            .add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
        os.users
            .add("evil", os.scenario.attacker, os.scenario.attacker_gid, "/home/evil");
        os.fs
            .mkdir_p("/var/spool/lpd", Uid::ROOT, Gid::ROOT, Mode::new(0o755))
            .unwrap();
        os.fs
            .put_file("/etc/passwd", "root:0:0:", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        os.fs
            .put_file("/etc/shadow", "root:HASH", Uid::ROOT, Gid::ROOT, Mode::new(0o600))
            .unwrap();
        os.fs
            .put_file("/usr/bin/lpr", "", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))
            .unwrap();
        crate::perturb::tag_standard_targets(&mut os);
        TestSetup::new(os).program("/usr/bin/lpr").args(["report.txt"])
    }

    #[test]
    fn clean_run_is_violation_free() {
        let s = setup();
        let out = run_once(&s, &MiniLpr, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.os.trace.sites().len(), 2);
    }

    #[test]
    fn plan_enumerates_sites_and_faults() {
        let s = setup();
        let c = Campaign::new(&MiniLpr, &s);
        let plan = c.plan();
        assert_eq!(plan.sites.len(), 2);
        // Site 1 (arg): 5 user-file-name indirect faults.
        assert_eq!(plan.sites[0].faults.len(), 5);
        // Site 2 (create): 4 direct file faults, as in §3.4.
        assert_eq!(plan.sites[1].faults.len(), 4);
        assert_eq!(plan.total_faults(), 9);
    }

    #[test]
    fn execute_detects_the_lpr_vulnerabilities() {
        let s = setup();
        let report = Campaign::new(&MiniLpr, &s).execute();
        assert_eq!(report.clean_violations, 0);
        assert_eq!(report.injected(), 9);
        // The four create-site perturbations all defeat the naive creat.
        let create_violations: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.site == "lpr:create" && !r.tolerated())
            .map(|r| r.fault_id.clone())
            .collect();
        assert_eq!(create_violations.len(), 4, "{create_violations:?}");
        assert_eq!(report.perturbed_sites, 2);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let s = setup();
        let seq = Campaign::new(&MiniLpr, &s).execute();
        let par = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                parallel: true,
                ..Default::default()
            })
            .execute();
        assert_eq!(seq.injected(), par.injected());
        assert_eq!(seq.violated(), par.violated());
        let seq_ids: Vec<_> = seq.records.iter().map(|r| &r.fault_id).collect();
        let par_ids: Vec<_> = par.records.iter().map(|r| &r.fault_id).collect();
        assert_eq!(seq_ids, par_ids, "records must come back in plan order");
    }

    #[test]
    fn options_limit_sites_and_faults() {
        let s = setup();
        let report = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                max_sites: Some(1),
                max_faults_per_site: Some(2),
                ..Default::default()
            })
            .execute();
        assert_eq!(report.perturbed_sites, 1);
        assert_eq!(report.injected(), 2);
        assert!(report.interaction_coverage().value() < 1.0);
    }

    #[test]
    fn site_filter_selects_specific_points() {
        let s = setup();
        let mut filter = BTreeSet::new();
        filter.insert(SiteId::new("lpr:create"));
        let report = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                site_filter: Some(filter),
                ..Default::default()
            })
            .execute();
        assert!(report.records.iter().all(|r| r.site == "lpr:create"));
        assert_eq!(report.injected(), 4);
    }

    #[test]
    fn execute_until_honors_parallel_and_matches_sequential() {
        let s = setup();
        for criterion in [0.5, 1.0] {
            let seq = Campaign::new(&MiniLpr, &s).execute_until(criterion);
            let par = Campaign::new(&MiniLpr, &s)
                .with_options(CampaignOptions {
                    parallel: true,
                    ..Default::default()
                })
                .execute_until(criterion);
            assert_eq!(seq, par, "criterion {criterion}: records must match in plan order");
        }
    }

    #[test]
    fn occurrence_cap_expands_plans_with_occurrence_sensitive_faults() {
        let s = setup();
        let base = Campaign::new(&MiniLpr, &s).plan();
        let expanded = Campaign::new(&MiniLpr, &s)
            .with_options(CampaignOptions {
                max_occurrences_per_site: usize::MAX,
                ..Default::default()
            })
            .plan();
        // MiniLpr hits each site once, so even an uncapped plan matches the
        // default first-hit plan: occurrence awareness adds jobs only when
        // the trace shows re-execution.
        assert_eq!(base.total_faults(), expanded.total_faults());
        assert!(expanded.sites.iter().all(|site| site.occurrences == 1));
        assert_eq!(base.jobs(), expanded.jobs());
    }

    #[test]
    fn execute_until_stops_at_the_criterion() {
        let s = setup();
        // MiniLpr has two perturbable sites; 0.5 coverage stops after one.
        let half = Campaign::new(&MiniLpr, &s).execute_until(0.5);
        assert_eq!(half.perturbed_sites, 1);
        assert_eq!(half.interaction_coverage().value(), 0.5);
        assert!(half.injected() < 9);
        // 1.0 coverage runs everything.
        let full = Campaign::new(&MiniLpr, &s).execute_until(1.0);
        assert_eq!(full.perturbed_sites, 2);
        assert_eq!(full.injected(), 9);
        // An unreachable criterion also runs everything (and reports < 1.0
        // only if sites were excluded, which they are not here).
        let over = Campaign::new(&MiniLpr, &s).execute_until(2.0);
        assert_eq!(over.perturbed_sites, 2);
    }

    struct Panicker;
    impl Application for Panicker {
        fn name(&self) -> &'static str {
            "panicker"
        }
        fn run(&self, _os: &mut Os, _pid: Pid) -> i32 {
            panic!("deliberate crash for harness robustness");
        }
    }

    #[test]
    fn harness_survives_a_panicking_application_and_keeps_the_payload() {
        let s = setup();
        let out = run_once(&s, &Panicker, None);
        assert!(out.has_crashed());
        assert_eq!(out.crashed.as_deref(), Some("deliberate crash for harness robustness"));
        assert_eq!(out.exit, None);
    }
}
