//! The campaign driver facade: declarative worlds, frozen sessions, batch
//! suites.
//!
//! This module is the public face of the testing engine, layered so each
//! concern stays independent:
//!
//! 1. **[`WorldSpec`] / [`ScenarioBuilder`]** (`spec`) — worlds declared as
//!    data: files, users, registry keys, network services and attack-target
//!    tags, validated once and reusable across campaigns.
//! 2. **[`Session`]** (`session`) — a spec materialized and frozen; every
//!    run starts from a copy-on-write snapshot of the pristine world, so
//!    per-fault setup costs O(touched state) instead of O(world).
//! 3. **[`Suite`]** (`suite`) — many `(application, world)` pairs executed
//!    as one batch, streaming [`SuiteEvent`]s and aggregating into a
//!    [`SuiteReport`] with cross-application rollups.
//! 4. **[`planner`]** — the adaptive fault-space planner between the fault
//!    plan and the executor: canonicalizes every job into a
//!    content-addressed [`planner::FaultKey`], dedups equivalent jobs
//!    within a plan, memoizes `(setup fingerprint, FaultKey) -> RunDigest`
//!    in a suite-scoped [`planner::ResultCache`] so identical runs replay
//!    from cache instead of re-executing, and (opt-in, via
//!    [`crate::campaign::CampaignOptions::plan_budget`]) prioritizes
//!    remaining jobs by observed per-EAI-category verdict yield.
//! 5. **[`Executor`]** (`executor`) — the single suite-wide work pool:
//!    every injected run (across all applications) goes into one shared
//!    queue drained by at most `available_parallelism` workers, with
//!    deterministic plan-order reassembly of the results. Cache replays
//!    resolve inline on the calling thread and never occupy a worker slot.
//!
//! The pre-engine driver, [`crate::campaign::Campaign`], remains underneath
//! as the single-campaign primitive; its deprecated constructor keeps old
//! callers reproducing the paper's numbers unchanged.
//!
//! # Example
//!
//! ```
//! use epa_core::engine::{Engine, WorldSpec};
//! use epa_sandbox::app::Application;
//! use epa_sandbox::cred::{Gid, Uid};
//! use epa_sandbox::os::{Os, ScenarioMeta};
//! use epa_sandbox::process::Pid;
//!
//! struct Lpr;
//! impl Application for Lpr {
//!     fn name(&self) -> &'static str { "lpr" }
//!     fn run(&self, os: &mut Os, pid: Pid) -> i32 {
//!         // creat(n, 0660) without O_EXCL — the flaw from the paper.
//!         match os.sys_write_file(pid, "lpr:create", "/var/spool/lpd/job", "data", 0o660) {
//!             Ok(()) => 0,
//!             Err(_) => 1,
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioMeta::default();
//! let spec = WorldSpec::builder()
//!     .user("root", Uid::ROOT, Gid::ROOT, "/root")
//!     .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
//!     .dir("/var/spool/lpd", Uid::ROOT, Gid::ROOT, 0o755)
//!     .root_file("/etc/passwd", "root:0:0:", 0o644)
//!     .suid_root_program("/usr/bin/lpr")
//!     .build();
//!
//! let session = Engine::new().session(&spec)?;
//! let report = session.execute(&Lpr);
//! assert_eq!(report.injected(), 4);   // existence, ownership, permission, symlink
//! assert_eq!(report.violated(), 4);   // naive creat tolerates none of them
//! # Ok(())
//! # }
//! ```

pub mod executor;
#[cfg(feature = "model-check")]
pub mod modelcheck;
pub mod planner;
pub mod session;
pub mod spec;
pub mod suite;

pub use executor::Executor;
pub use planner::{CacheStats, FaultKey, ResultCache, RunDigest};
pub use session::Session;
pub use spec::{
    DirSpec, FileSpec, InboundSpec, IpcSpec, RegKeySpec, ScenarioBuilder, ServiceSpec, SpecError, SymlinkSpec,
    UserSpec, WorldSpec,
};
pub use suite::{Suite, SuiteEvent, SuiteReport};

use epa_sandbox::app::Application;

use crate::campaign::{CampaignOptions, TestSetup};

/// The top-level facade: a set of default campaign options from which
/// sessions and suites are minted.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    options: CampaignOptions,
}

impl Engine {
    /// An engine with default options.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Replaces the default campaign options handed to new sessions.
    #[must_use]
    pub fn with_options(mut self, options: CampaignOptions) -> Engine {
        self.options = options;
        self
    }

    /// Materializes a spec into a frozen [`Session`] carrying the engine's
    /// options.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] from [`WorldSpec::materialize`].
    pub fn session(&self, spec: &WorldSpec) -> Result<Session, SpecError> {
        Ok(Session::new(spec)?.with_options(self.options.clone()))
    }

    /// Freezes an already-built setup into a [`Session`] carrying the
    /// engine's options.
    pub fn session_from(&self, setup: TestSetup) -> Session {
        Session::from_setup(setup).with_options(self.options.clone())
    }

    /// An empty [`Suite`]; `register` campaigns onto it, then `execute`.
    pub fn suite(&self) -> Suite {
        Suite::new()
    }

    /// Convenience: build a suite from heterogeneous `(application, spec)`
    /// pairs in one call, each session carrying the engine's options.
    ///
    /// ```
    /// # use epa_core::engine::Engine;
    /// # use epa_sandbox::app::Application;
    /// # use epa_sandbox::os::Os;
    /// # use epa_sandbox::process::Pid;
    /// # struct A; impl Application for A {
    /// #     fn name(&self) -> &'static str { "a" }
    /// #     fn run(&self, _: &mut Os, _: Pid) -> i32 { 0 }
    /// # }
    /// # struct B; impl Application for B {
    /// #     fn name(&self) -> &'static str { "b" }
    /// #     fn run(&self, _: &mut Os, _: Pid) -> i32 { 0 }
    /// # }
    /// # fn spec_for(_: &str) -> epa_core::engine::WorldSpec { unimplemented!() }
    /// # fn no_run(engine: Engine) -> Result<(), epa_core::engine::SpecError> {
    /// let suite = engine.suite_of(vec![
    ///     (Box::new(A) as Box<dyn Application + Send + Sync>, spec_for("a")),
    ///     (Box::new(B), spec_for("b")),
    /// ])?;
    /// # Ok(()) }
    /// ```
    ///
    /// # Errors
    ///
    /// The first [`SpecError`] any spec produces.
    pub fn suite_of(&self, pairs: Vec<(Box<dyn Application + Send + Sync>, WorldSpec)>) -> Result<Suite, SpecError> {
        let mut suite = Suite::new();
        for (app, spec) in pairs {
            let session = self.session(&spec)?;
            suite.register_session(app, session);
        }
        Ok(suite)
    }
}
