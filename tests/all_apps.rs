//! Integration: full campaigns over every model application — the
//! cross-cutting guarantees the methodology depends on.

use epa::apps::*;
use epa::core::campaign::{Campaign, CampaignOptions, TestSetup};
use epa::sandbox::app::Application;

fn all_cases() -> Vec<(&'static dyn Application, &'static dyn Application, TestSetup)> {
    vec![
        (&Lpr, &LprFixed, worlds::lpr_world()),
        (&Turnin, &TurninFixed, worlds::turnin_world()),
        (&FontPurge, &FontPurgeFixed, worlds::fontpurge_world()),
        (&NtLogon, &NtLogonFixed, worlds::ntlogon_world()),
        (&Fingerd, &FingerdFixed, worlds::fingerd_world()),
        (&Authd, &AuthdFixed, worlds::authd_world()),
        (&MailNotify, &MailNotifyFixed, worlds::mailnotify_world()),
        (&Backupd, &BackupdFixed, worlds::backupd_world()),
    ]
}

#[test]
fn every_clean_run_is_violation_free() {
    for (app, fixed, setup) in all_cases() {
        for a in [app, fixed] {
            let out = epa::core::campaign::run_once(&setup, a, None);
            assert!(
                out.violations.is_empty(),
                "{}: clean-run violations {:?}",
                a.name(),
                out.violations
            );
            assert!(!out.crashed, "{} crashed", a.name());
        }
    }
}

#[test]
fn every_vulnerable_app_fails_some_fault_every_fixed_app_mostly_survives() {
    for (app, fixed, setup) in all_cases() {
        let vuln = Campaign::new(app, &setup).execute();
        assert!(vuln.violated() > 0, "{}: the seeded flaws must be found", app.name());
        let patched = Campaign::new(fixed, &setup).execute();
        assert!(
            patched.vulnerability_score() < vuln.vulnerability_score(),
            "{}: fix must lower the score ({} -> {})",
            app.name(),
            vuln.vulnerability_score(),
            patched.vulnerability_score()
        );
    }
}

#[test]
fn fully_fixable_apps_reach_full_fault_coverage() {
    // Authenticity faults are not fixable without cryptographic protocols
    // (documented in EXPERIMENTS.md), so fingerd-fixed is exempt here.
    let fixable: Vec<(&dyn Application, TestSetup)> = vec![
        (&LprFixed, worlds::lpr_world()),
        (&TurninFixed, worlds::turnin_world()),
        (&FontPurgeFixed, worlds::fontpurge_world()),
        (&NtLogonFixed, worlds::ntlogon_world()),
        (&AuthdFixed, worlds::authd_world()),
        (&MailNotifyFixed, worlds::mailnotify_world()),
        (&BackupdFixed, worlds::backupd_world()),
    ];
    for (app, setup) in fixable {
        let report = Campaign::new(app, &setup).execute();
        assert_eq!(
            report.violated(),
            0,
            "{}: {:#?}",
            app.name(),
            report.violations().collect::<Vec<_>>()
        );
    }
}

#[test]
fn parallel_campaigns_agree_with_sequential_everywhere() {
    for (app, _, setup) in all_cases() {
        let seq = Campaign::new(app, &setup).execute();
        let par = Campaign::new(app, &setup)
            .with_options(CampaignOptions {
                parallel: true,
                ..Default::default()
            })
            .execute();
        assert_eq!(seq.injected(), par.injected(), "{}", app.name());
        assert_eq!(seq.violated(), par.violated(), "{}", app.name());
        let seq_v: Vec<_> = seq.violations().map(|r| r.fault_id.clone()).collect();
        let par_v: Vec<_> = par.violations().map(|r| r.fault_id.clone()).collect();
        assert_eq!(seq_v, par_v, "{}", app.name());
    }
}

#[test]
fn campaigns_are_deterministic() {
    for (app, _, setup) in all_cases() {
        let a = Campaign::new(app, &setup).execute();
        let b = Campaign::new(app, &setup).execute();
        assert_eq!(a, b, "{}", app.name());
    }
}

#[test]
fn faults_fire_in_almost_all_runs() {
    // `applied == false` is allowed only when the perturbed input point is
    // never reached under the fault; it should be rare.
    for (app, _, setup) in all_cases() {
        let report = Campaign::new(app, &setup).execute();
        let unapplied = report.records.iter().filter(|r| !r.applied).count();
        assert!(
            unapplied * 5 <= report.injected(),
            "{}: {}/{} faults never fired",
            app.name(),
            unapplied,
            report.injected()
        );
    }
}

#[test]
fn reports_serialize_for_downstream_tooling() {
    let setup = worlds::turnin_world();
    let report = Campaign::new(&Turnin, &setup).execute();
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let back: epa::core::report::CampaignReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);
    assert!(json.contains("turnin:read_projlist"));
}
