//! A Windows NT-style registry: a hierarchical key/value store with
//! per-key access control.
//!
//! The paper's §4.2 case study tests NT modules that trust values stored in
//! *unprotected* (world-writable) registry keys. The substrate models
//! exactly the properties those tests need: a key tree, string values, a
//! per-key ACL reduced to its security-relevant essence (who may write),
//! and an enumeration of unprotected keys matching the paper's "29
//! unprotected keys" inventory.

use shim_sync::sync::Arc;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::cred::{Credentials, Uid};
use crate::error::SysResult;
use crate::syserr;

/// Access control for one registry key, reduced to the write-control
/// question the case study turns on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegAcl {
    /// Owning user (Administrator == root in the sandbox's id space).
    pub owner: Uid,
    /// Whether *everyone* may write the key — the "unprotected" condition.
    pub world_writable: bool,
}

impl Default for RegAcl {
    fn default() -> Self {
        RegAcl {
            owner: Uid::ROOT,
            world_writable: false,
        }
    }
}

/// One registry key: values, subkeys, ACL.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegKey {
    /// Named string values.
    pub values: BTreeMap<String, String>,
    /// Child keys.
    pub subkeys: BTreeMap<String, RegKey>,
    /// Access control.
    pub acl: RegAcl,
}

/// The registry.
///
/// `clone` is a copy-on-write snapshot: the key tree is shared until either
/// copy writes, and the first write materializes a private tree. Use
/// [`Registry::deep_clone`] for an eagerly materialized copy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registry {
    root: Arc<RegKey>,
}

/// Splits a `/`-separated key path into components.
fn split(path: &str) -> Vec<&str> {
    path.split('/').filter(|c| !c.is_empty()).collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fully materialized copy sharing no storage with `self`.
    pub fn deep_clone(&self) -> Registry {
        Registry {
            root: Arc::new((*self.root).clone()),
        }
    }

    /// Whether the key tree is physically shared with `other` (copy-on-write
    /// introspection).
    pub fn shares_storage_with(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.root, &other.root)
    }

    /// Borrows a key.
    pub fn key(&self, path: &str) -> Option<&RegKey> {
        let mut cur: &RegKey = &self.root;
        for comp in split(path) {
            cur = cur.subkeys.get(comp)?;
        }
        Some(cur)
    }

    fn key_mut(&mut self, path: &str) -> Option<&mut RegKey> {
        let mut cur = Arc::make_mut(&mut self.root);
        for comp in split(path) {
            cur = cur.subkeys.get_mut(comp)?;
        }
        Some(cur)
    }

    /// Creates a key (and any missing ancestors) with the given ACL,
    /// leaving existing ancestors untouched.
    pub fn ensure_key(&mut self, path: &str, acl: RegAcl) -> &mut RegKey {
        let comps = split(path).into_iter().map(str::to_string).collect::<Vec<_>>();
        let mut cur = Arc::make_mut(&mut self.root);
        for comp in comps {
            cur = cur.subkeys.entry(comp).or_default();
        }
        cur.acl = acl;
        cur
    }

    /// Sets a value, enforcing the ACL.
    ///
    /// # Errors
    ///
    /// `ENOENT` for a missing key; `EACCES` when `cred` is neither the
    /// owner, an administrator, nor covered by world-write.
    pub fn set_value(&mut self, path: &str, name: &str, value: impl Into<String>, cred: &Credentials) -> SysResult<()> {
        let key = self
            .key_mut(path)
            .ok_or_else(|| syserr!(Enoent, "registry key {path}"))?;
        if !(key.acl.world_writable || cred.euid.is_root() || cred.euid == key.acl.owner) {
            return Err(syserr!(Eacces, "registry key {path}"));
        }
        key.values.insert(name.to_string(), value.into());
        Ok(())
    }

    /// Sets a value without ACL checks (world building / perturbation).
    pub fn god_set_value(&mut self, path: &str, name: &str, value: impl Into<String>) {
        let key = match self.key_mut(path) {
            Some(k) => k,
            None => self.ensure_key(path, RegAcl::default()),
        };
        key.values.insert(name.to_string(), value.into());
    }

    /// Reads a value together with the key's world-writability — the fact
    /// the syscall layer folds into an `Untrusted` label.
    ///
    /// # Errors
    ///
    /// `ENOENT` for a missing key or value.
    pub fn get_value(&self, path: &str, name: &str) -> SysResult<(String, bool)> {
        let key = self.key(path).ok_or_else(|| syserr!(Enoent, "registry key {path}"))?;
        let v = key
            .values
            .get(name)
            .cloned()
            .ok_or_else(|| syserr!(Enoent, "registry value {path}\\{name}"))?;
        Ok((v, key.acl.world_writable))
    }

    /// Deletes a value, enforcing the ACL.
    ///
    /// # Errors
    ///
    /// As [`Registry::set_value`].
    pub fn delete_value(&mut self, path: &str, name: &str, cred: &Credentials) -> SysResult<()> {
        let key = self
            .key_mut(path)
            .ok_or_else(|| syserr!(Enoent, "registry key {path}"))?;
        if !(key.acl.world_writable || cred.euid.is_root() || cred.euid == key.acl.owner) {
            return Err(syserr!(Eacces, "registry key {path}"));
        }
        key.values
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| syserr!(Enoent, "registry value {path}\\{name}"))
    }

    /// Changes a key's ACL unconditionally (perturbation helper).
    pub fn god_set_acl(&mut self, path: &str, acl: RegAcl) -> SysResult<()> {
        self.key_mut(path)
            .map(|k| k.acl = acl)
            .ok_or_else(|| syserr!(Enoent, "registry key {path}"))
    }

    /// Every key path whose ACL is world-writable — the paper's
    /// "unprotected keys" inventory.
    pub fn unprotected_keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(key: &RegKey, path: &str, out: &mut Vec<String>) {
            for (name, sub) in &key.subkeys {
                let p = if path.is_empty() {
                    name.clone()
                } else {
                    format!("{path}/{name}")
                };
                if sub.acl.world_writable {
                    out.push(p.clone());
                }
                walk(sub, &p, out);
            }
        }
        walk(&self.root, "", &mut out);
        out
    }

    /// Total number of keys (excluding the implicit root).
    pub fn key_count(&self) -> usize {
        fn walk(key: &RegKey) -> usize {
            key.subkeys.values().map(|k| 1 + walk(k)).sum()
        }
        walk(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Gid;

    fn admin() -> Credentials {
        Credentials::root()
    }

    fn user(uid: u32) -> Credentials {
        Credentials::user(Uid(uid), Gid(uid))
    }

    #[test]
    fn ensure_and_get() {
        let mut r = Registry::new();
        r.ensure_key(
            "HKLM/Software/Fonts",
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        r.god_set_value("HKLM/Software/Fonts", "F0", "/winnt/fonts/arial.fon");
        let (v, ww) = r.get_value("HKLM/Software/Fonts", "F0").unwrap();
        assert_eq!(v, "/winnt/fonts/arial.fon");
        assert!(ww);
    }

    #[test]
    fn acl_enforced_for_users() {
        let mut r = Registry::new();
        r.ensure_key(
            "HKLM/Secure",
            RegAcl {
                owner: Uid::ROOT,
                world_writable: false,
            },
        );
        assert!(r.set_value("HKLM/Secure", "v", "x", &user(500)).is_err());
        assert!(r.set_value("HKLM/Secure", "v", "x", &admin()).is_ok());
        // World-writable key accepts anyone — the vulnerability precondition.
        r.ensure_key(
            "HKLM/Open",
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        assert!(r.set_value("HKLM/Open", "v", "evil", &user(500)).is_ok());
    }

    #[test]
    fn unprotected_inventory() {
        let mut r = Registry::new();
        r.ensure_key(
            "HKLM/A",
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        r.ensure_key(
            "HKLM/A/Sub",
            RegAcl {
                owner: Uid::ROOT,
                world_writable: false,
            },
        );
        r.ensure_key(
            "HKLM/B",
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        let keys = r.unprotected_keys();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&"HKLM/A".to_string()));
        assert!(keys.contains(&"HKLM/B".to_string()));
        assert!(r.key_count() >= 4); // HKLM, A, A/Sub, B
    }

    #[test]
    fn delete_value_respects_acl() {
        let mut r = Registry::new();
        r.ensure_key(
            "HKLM/K",
            RegAcl {
                owner: Uid(7),
                world_writable: false,
            },
        );
        r.god_set_value("HKLM/K", "v", "1");
        assert!(r.delete_value("HKLM/K", "v", &user(8)).is_err());
        assert!(r.delete_value("HKLM/K", "v", &user(7)).is_ok());
    }

    #[test]
    fn missing_paths_are_enoent() {
        let r = Registry::new();
        assert!(r.get_value("HKLM/None", "v").is_err());
        assert!(r.key("HKLM/None").is_none());
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut r = Registry::new();
        r.ensure_key("HKLM/K", RegAcl::default());
        r.god_set_value("HKLM/K", "v", "1");
        let snap = r.clone();
        assert!(snap.shares_storage_with(&r));
        let mut w = r.clone();
        w.god_set_value("HKLM/K", "v", "2");
        assert!(!w.shares_storage_with(&r));
        assert_eq!(r.get_value("HKLM/K", "v").unwrap().0, "1");
        assert_eq!(w.get_value("HKLM/K", "v").unwrap().0, "2");
        let deep = r.deep_clone();
        assert_eq!(deep, r);
        assert!(!deep.shares_storage_with(&r));
    }

    #[test]
    fn god_set_acl_flips_protection() {
        let mut r = Registry::new();
        r.ensure_key("HKLM/K", RegAcl::default());
        assert!(r.unprotected_keys().is_empty());
        r.god_set_acl(
            "HKLM/K",
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        )
        .unwrap();
        assert_eq!(r.unprotected_keys(), vec!["HKLM/K".to_string()]);
    }
}
