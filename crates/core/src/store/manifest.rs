//! The lockfile-style campaign manifest: the exact
//! `(spec fingerprint, plan, store keys)` of a suite run.
//!
//! A warm re-run is only trustworthy when every canonical key the plan
//! will schedule is already persisted. The manifest pins that set: one
//! [`AppManifest`] per registered application, carrying the campaign's
//! memoization scope (the `(application, setup fingerprint)` hash), the
//! plan size, and the full canonical key text of every executable
//! canonical job — statically pruned jobs are excluded because they never
//! execute and never populate the store. [`SuiteManifest::verify`] then
//! answers "would this suite replay entirely from the store?" without
//! scheduling a single job, and `reproduce -- store verify` gates on it
//! in CI.
//!
//! Like the store entries, the manifest is versioned: a reader rejects a
//! manifest written by a different format generation instead of
//! misinterpreting it.

use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::engine::planner::FaultKey;
use crate::store::ResultStore;

/// Version of the manifest schema. Bump on incompatible change.
pub const MANIFEST_VERSION: u32 = 1;

/// The manifest's file name inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// One canonical store key of a plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestKey {
    /// The key's 64-bit content address, hex (the entry's file name stem).
    pub digest: String,
    /// The full canonical [`FaultKey`] text (what lookups compare).
    pub key: String,
}

/// One application's slice of the suite manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppManifest {
    /// The application under test.
    pub app: String,
    /// Its memoization scope — `fnv1a("{app}\n{fingerprint:016x}")`, hex.
    pub scope: String,
    /// Total jobs the plan schedules (canonical + aliases).
    pub jobs: usize,
    /// The canonical executable keys, in plan order.
    pub keys: Vec<ManifestKey>,
}

/// The lockfile: what a suite run planned and which store keys back it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuiteManifest {
    /// Manifest schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Per-application slices, in suite registration order.
    pub apps: Vec<AppManifest>,
}

/// The outcome of checking a manifest against a store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ManifestCheck {
    /// Keys present in the store.
    pub present: usize,
    /// Missing keys as `(app, key digest)` pairs.
    pub missing: Vec<(String, String)>,
}

impl ManifestCheck {
    /// True when every manifest key is backed by a store entry — i.e. a
    /// warm re-run of the manifested suite executes zero jobs.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

impl SuiteManifest {
    /// Total canonical store keys across all applications.
    pub fn store_keys(&self) -> usize {
        self.apps.iter().map(|a| a.keys.len()).sum()
    }

    /// Writes the manifest as pretty JSON to `dir/MANIFEST.json`.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(MANIFEST_FILE);
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("manifest serialization: {e}")))?;
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// Reads `dir/MANIFEST.json`. `Ok(None)` when no manifest exists.
    ///
    /// # Errors
    ///
    /// Filesystem errors, unparseable JSON, or a foreign
    /// [`MANIFEST_VERSION`] (rejected rather than misread).
    pub fn load_from(dir: &Path) -> io::Result<Option<SuiteManifest>> {
        let path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let manifest: SuiteManifest = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: manifest version {} (this build reads {MANIFEST_VERSION})",
                    path.display(),
                    manifest.version
                ),
            ));
        }
        Ok(Some(manifest))
    }

    /// Checks that every manifested key is present in `store`.
    pub fn verify(&self, store: &dyn ResultStore) -> ManifestCheck {
        let mut check = ManifestCheck::default();
        for app in &self.apps {
            let Ok(scope) = u64::from_str_radix(&app.scope, 16) else {
                for key in &app.keys {
                    check.missing.push((app.app.clone(), key.digest.clone()));
                }
                continue;
            };
            for key in &app.keys {
                if store.load(scope, &FaultKey::synthetic(&key.key)).is_some() {
                    check.present += 1;
                } else {
                    check.missing.push((app.app.clone(), key.digest.clone()));
                }
            }
        }
        check
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::planner::RunDigest;
    use crate::store::MemoryStore;

    fn manifest_with(keys: &[&str]) -> SuiteManifest {
        SuiteManifest {
            version: MANIFEST_VERSION,
            apps: vec![AppManifest {
                app: "lpr".to_string(),
                scope: format!("{:016x}", 42u64),
                jobs: keys.len() + 1,
                keys: keys
                    .iter()
                    .map(|k| ManifestKey {
                        digest: format!("{}", FaultKey::synthetic(k)),
                        key: (*k).to_string(),
                    })
                    .collect(),
            }],
        }
    }

    fn digest() -> RunDigest {
        RunDigest {
            applied: true,
            exit: Some(0),
            crashed: None,
            audit_events: 1,
            violations: Vec::new(),
        }
    }

    #[test]
    fn verify_reports_missing_keys_until_the_store_is_complete() {
        let manifest = manifest_with(&["a#0|-|{}", "b#0|-|{}"]);
        assert_eq!(manifest.store_keys(), 2);
        let store = MemoryStore::new();
        let partial = manifest.verify(&store);
        assert!(!partial.is_complete());
        assert_eq!(partial.missing.len(), 2);
        store.save(42, &FaultKey::synthetic("a#0|-|{}"), &digest());
        store.save(42, &FaultKey::synthetic("b#0|-|{}"), &digest());
        let complete = manifest.verify(&store);
        assert!(complete.is_complete());
        assert_eq!(complete.present, 2);
    }

    #[test]
    fn manifests_round_trip_on_disk_and_reject_foreign_versions() {
        let dir = std::env::temp_dir().join(format!("epa-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        assert_eq!(SuiteManifest::load_from(&dir).expect("absent is fine"), None);
        let manifest = manifest_with(&["a#0|-|{}"]);
        manifest.write_to(&dir).expect("writes");
        assert_eq!(SuiteManifest::load_from(&dir).expect("reads"), Some(manifest.clone()));
        let mut foreign = manifest;
        foreign.version = MANIFEST_VERSION + 1;
        foreign.write_to(&dir).expect("writes");
        let err = SuiteManifest::load_from(&dir).expect_err("foreign versions are rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
