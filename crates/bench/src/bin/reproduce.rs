//! `reproduce` — regenerate any table, figure or case study of the paper.
//!
//! ```text
//! cargo run -p epa-bench --bin reproduce -- all
//! cargo run -p epa-bench --bin reproduce -- table1 turnin figure2
//! ```

use epa_bench::experiments;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure1",
    "figure2",
    "lpr",
    "turnin",
    "registry",
    "comparison",
    "placement",
    "patterns",
    "suite",
    "clean",
];

fn run(name: &str) -> Result<(), String> {
    match name {
        "table1" => print!("{}", experiments::table1()),
        "table2" => print!("{}", experiments::table2()),
        "table3" => print!("{}", experiments::table3()),
        "table4" => print!("{}", experiments::table4()),
        "table5" => print!("{}", experiments::table5()),
        "table6" => print!("{}", experiments::table6()),
        "figure1" => print!("{}", experiments::figure1().render()),
        "figure2" => print!("{}", experiments::figure2().render()),
        "lpr" => print!("{}", experiments::lpr_34().render()),
        "turnin" => print!("{}", experiments::turnin_41().render()),
        "registry" => print!("{}", experiments::registry_42().render()),
        "comparison" => print!("{}", experiments::comparison().render()),
        "placement" => print!("{}", experiments::placement().render()),
        "patterns" => print!("{}", experiments::patterns().render()),
        "suite" => print!("{}", experiments::suite().render_text()),
        "clean" => {
            println!("Clean-run baseline (violations in unperturbed runs):");
            for (app, n) in experiments::clean_baseline() {
                println!("  {app:<16} {n}");
            }
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    println!();
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for name in selected {
        if let Err(e) = run(name) {
            eprintln!("reproduce: {e}");
            eprintln!("available: {}", EXPERIMENTS.join(", "));
            failed = true;
        }
    }
    if failed {
        std::process::exit(2);
    }
}
