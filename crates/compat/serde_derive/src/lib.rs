//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote` (unavailable offline): the item is parsed directly from the
//! `proc_macro` token stream and the impl is emitted as a source string.
//! Supports non-generic structs (named, tuple, unit) and enums (unit, tuple,
//! struct variants) — exactly the shapes the `epa` workspace derives on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Named fields: (accessor ident, serialized key) pairs — the key drops
    /// any `r#` raw-identifier prefix.
    Named(Vec<(String, String)>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives the stand-in `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the stand-in `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_named_fields(g.stream()),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute's `[...]` group
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on commas that sit outside nested `<...>`.
/// Token groups (`(..)`, `{..}`, `[..]`) are single trees, so only angle
/// brackets need explicit depth tracking. The `>` of an `->` arrow (fn
/// pointer types) is not a closing bracket and must not affect the depth.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            let after_dash = matches!(current.last(), Some(TokenTree::Punct(prev)) if prev.as_char() == '-');
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if !after_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let mut fields = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let accessor = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => panic!("expected field name, found {other:?}"),
        };
        let key = accessor.strip_prefix("r#").unwrap_or(&accessor).to_string();
        fields.push((accessor, key));
    }
    Fields::Named(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match part.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_named_fields(g.stream()),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            // Unit variant, possibly with an explicit `= discriminant`.
            _ => Fields::Unit,
        };
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n).map(|i| format!("::serde::Serialize::ser(&self.{i})")).collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
                }
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|(acc, key)| {
                            format!("(::std::string::String::from(\"{key}\"), ::serde::Serialize::ser(&self.{acc}))")
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn ser(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> =
                            binders.iter().map(|b| format!("::serde::Serialize::ser({b})")).collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Seq(::std::vec![{elems}]))]),",
                            binds = binders.join(", "),
                            elems = elems.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|(acc, _)| acc.clone()).collect();
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|(acc, key)| {
                                format!("(::std::string::String::from(\"{key}\"), ::serde::Serialize::ser({acc}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(::std::vec![{entries}]))]),",
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n    fn ser(&self) -> ::serde::Value {{\n        match self {{\n            {}\n        }}\n    }}\n}}\n",
                arms.join("\n            ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!(
                    "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), _ => ::std::result::Result::Err(::serde::DeError::expected(\"null\", \"{name}\")) }}"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Deserialize::de(&__s[{i}])?")).collect();
                    format!(
                        "{{ let __s = v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}\"))?;\n  if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"expected {n} elements for {name}, got {{}}\", __s.len()))); }}\n  ::std::result::Result::Ok({name}({elems})) }}",
                        elems = elems.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|(acc, key)| {
                            format!(
                                "{acc}: ::serde::Deserialize::de(::serde::field(__m, \"{key}\", \"{name}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{{ let __m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n  ::std::result::Result::Ok({name} {{ {} }}) }}",
                        inits.join(" ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn de(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(n) => {
                        let elems: Vec<String> =
                            (0..*n).map(|i| format!("::serde::Deserialize::de(&__s[{i}])?")).collect();
                        Some(format!(
                            "\"{v}\" => {{ let __s = _inner.as_seq().ok_or_else(|| ::serde::DeError::expected(\"sequence\", \"{name}::{v}\"))?;\n  if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"expected {n} elements for {name}::{v}, got {{}}\", __s.len()))); }}\n  ::std::result::Result::Ok({name}::{v}({elems})) }}",
                            elems = elems.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|(acc, key)| {
                                format!(
                                    "{acc}: ::serde::Deserialize::de(::serde::field(__m, \"{key}\", \"{name}::{v}\")?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __m = _inner.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{v}\"))?;\n  ::std::result::Result::Ok({name}::{v} {{ {} }}) }}",
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n    fn de(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        match v {{\n            ::serde::Value::Str(__s) => match __s.as_str() {{\n                {unit}\n                __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n            }},\n            ::serde::Value::Map(__m) if __m.len() == 1 => {{\n                let (__k, _inner) = &__m[0];\n                match __k.as_str() {{\n                    {data}\n                    __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n                }}\n            }}\n            _ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-entry map\", \"{name}\")),\n        }}\n    }}\n}}\n",
                unit = unit_arms.join("\n                "),
                data = data_arms.join("\n                ")
            )
        }
    }
}
