//! Direct-fault patterns: the executable rendition of paper Table 6.
//!
//! Direct faults perturb environment-entity *attributes* before the
//! interaction executes. Which attributes apply depends on the operation:
//! a `creat`-style interaction cares whether the file already exists and as
//! what; a read cares about ownership/permission/symlink/content; an exec
//! cares about the binary; a receive cares about authenticity and protocol.
//! Name-invariance (TOCTTOU) faults apply only to objects the program
//! accesses more than once — exactly the paper's §3.4 reasoning for why
//! attributes 5 and 6 were "not applicable" at `lpr`'s `create`.

use std::collections::BTreeMap;

use epa_sandbox::os::ScenarioMeta;
use epa_sandbox::path;
use epa_sandbox::trace::{ObjectRef, OpKind};

use super::CatalogRow;
use crate::model::{DirectKind, EaiCategory, FsAttribute, NetAttribute, ProcAttribute, RegAttribute};
use crate::perturb::{ConcreteFault, DirectFault, FaultPayload};

/// Context the generator needs to make Table 6 patterns concrete.
#[derive(Debug, Clone)]
pub struct DirectContext<'a> {
    /// Scenario attack targets.
    pub scenario: &'a ScenarioMeta,
    /// File paths the traced run accessed two or more times (TOCTTOU
    /// candidates).
    pub reaccessed: &'a [String],
    /// Program-name → resolved-binary map from the clean run's exec events,
    /// so bare-name exec sites get file faults on the real binary.
    pub exec_resolutions: &'a BTreeMap<String, String>,
    /// The process's initial working directory, for absolutizing relative
    /// object paths.
    pub cwd: &'a str,
}

impl DirectContext<'_> {
    /// Absolutizes and lexically cleans an object path, so every fault id
    /// and payload target is canonical at the source: a site that names
    /// its object `./report.txt` and one that names it `report.txt` yield
    /// byte-identical faults (and therefore one planner
    /// [`crate::engine::planner::FaultKey`], not two). `..` components
    /// survive cleaning — the VFS resolves them physically, so rewriting
    /// them textually could retarget the fault across a symlinked parent.
    fn absolutize(&self, p: &str) -> String {
        if path::is_absolute(p) {
            path::clean(p)
        } else {
            path::clean(&path::join(self.cwd, p))
        }
    }
}

fn fs_fault(attr: FsAttribute, path: &str, description: impl Into<String>, payload: DirectFault) -> ConcreteFault {
    let slug = match attr {
        FsAttribute::Existence => "existence",
        FsAttribute::Ownership => "ownership",
        FsAttribute::Permission => "permission",
        FsAttribute::SymbolicLink => "symlink",
        FsAttribute::ContentInvariance => "content",
        FsAttribute::NameInvariance => "name",
        FsAttribute::WorkingDirectory => "workdir",
    };
    ConcreteFault {
        id: format!("direct:fs:{slug}@{path}"),
        category: EaiCategory::Direct(DirectKind::FileSystem(attr)),
        semantic: None,
        description: description.into(),
        payload: FaultPayload::Direct(payload),
    }
}

fn net_fault(attr: NetAttribute, key: &str, description: impl Into<String>, payload: DirectFault) -> ConcreteFault {
    let slug = match attr {
        NetAttribute::MessageAuthenticity => "authenticity",
        NetAttribute::Protocol => "protocol",
        NetAttribute::Socket => "socket",
        NetAttribute::ServiceAvailability => "availability",
        NetAttribute::EntityTrust => "trust",
    };
    ConcreteFault {
        id: format!("direct:net:{slug}@{key}"),
        category: EaiCategory::Direct(DirectKind::Network(attr)),
        semantic: None,
        description: description.into(),
        payload: FaultPayload::Direct(payload),
    }
}

fn proc_fault(attr: ProcAttribute, key: &str, description: impl Into<String>, payload: DirectFault) -> ConcreteFault {
    let slug = match attr {
        ProcAttribute::MessageAuthenticity => "authenticity",
        ProcAttribute::Trust => "trust",
        ProcAttribute::ServiceAvailability => "availability",
    };
    ConcreteFault {
        id: format!("direct:proc:{slug}@{key}"),
        category: EaiCategory::Direct(DirectKind::Process(attr)),
        semantic: None,
        description: description.into(),
        payload: FaultPayload::Direct(payload),
    }
}

fn reg_fault(attr: RegAttribute, key: &str, description: impl Into<String>, payload: DirectFault) -> ConcreteFault {
    let slug = match attr {
        RegAttribute::AclProtection => "acl",
        RegAttribute::ValueInvariance => "value",
    };
    ConcreteFault {
        id: format!("direct:reg:{slug}@{key}"),
        category: EaiCategory::Direct(DirectKind::Registry(attr)),
        semantic: None,
        description: description.into(),
        payload: FaultPayload::Direct(payload),
    }
}

/// Direct faults for a create-style file interaction: the four attributes
/// of paper §3.4 (existence, ownership, permission, symbolic link).
fn create_faults(p: &str, s: &ScenarioMeta) -> Vec<ConcreteFault> {
    vec![
        fs_fault(
            FsAttribute::Existence,
            p,
            format!("make {p} exist (attacker-owned) before the create"),
            DirectFault::FileMakeExist { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Ownership,
            p,
            format!("make {p} pre-exist owned by root"),
            DirectFault::FileChownRoot { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Permission,
            p,
            format!("make {p} pre-exist with restrictive permissions"),
            DirectFault::FilePermRestrict { path: p.into() },
        ),
        fs_fault(
            FsAttribute::SymbolicLink,
            p,
            format!("replace {p} with a symlink to {}", s.integrity_target),
            DirectFault::SymlinkSwap {
                path: p.into(),
                target: s.integrity_target.clone(),
            },
        ),
    ]
}

/// Direct faults for a read-style file interaction.
fn read_faults(p: &str, s: &ScenarioMeta, reaccessed: bool) -> Vec<ConcreteFault> {
    let mut out = vec![
        fs_fault(
            FsAttribute::Existence,
            p,
            format!("delete {p} before the read"),
            DirectFault::FileMakeMissing { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Ownership,
            p,
            format!("change ownership of {p} to the attacker"),
            DirectFault::FileChownAttacker { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Permission,
            p,
            format!("restrict {p} to root-only access"),
            DirectFault::FilePermRestrict { path: p.into() },
        ),
        fs_fault(
            FsAttribute::SymbolicLink,
            p,
            format!("replace {p} with a symlink to {}", s.secret_target),
            DirectFault::SymlinkSwap {
                path: p.into(),
                target: s.secret_target.clone(),
            },
        ),
        fs_fault(
            FsAttribute::ContentInvariance,
            p,
            format!("modify the content of {p}"),
            DirectFault::ModifyContent {
                path: p.into(),
                content: "perturbed content".into(),
            },
        ),
    ];
    if reaccessed {
        out.push(fs_fault(
            FsAttribute::NameInvariance,
            p,
            format!("rename {p} between accesses (TOCTTOU)"),
            DirectFault::RenameAway { path: p.into() },
        ));
    }
    out
}

/// Direct faults for a chdir interaction.
fn chdir_faults(p: &str, s: &ScenarioMeta) -> Vec<ConcreteFault> {
    vec![
        fs_fault(
            FsAttribute::Existence,
            p,
            format!("remove directory {p}"),
            DirectFault::FileMakeMissing { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Ownership,
            p,
            format!("change ownership of {p} to the attacker"),
            DirectFault::FileChownAttacker { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Permission,
            p,
            format!("strip traversal permission from {p}"),
            DirectFault::FilePermRestrict { path: p.into() },
        ),
        fs_fault(
            FsAttribute::SymbolicLink,
            p,
            format!("replace {p} with a symlink to {}", s.protected_dir),
            DirectFault::SymlinkSwap {
                path: p.into(),
                target: s.protected_dir.clone(),
            },
        ),
    ]
}

/// Direct faults for an exec interaction on a resolved binary.
fn exec_faults(p: &str, s: &ScenarioMeta) -> Vec<ConcreteFault> {
    let payload_path = format!("{}/payload.sh", s.attacker_home);
    vec![
        fs_fault(
            FsAttribute::Existence,
            p,
            format!("remove the binary {p}"),
            DirectFault::FileMakeMissing { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Ownership,
            p,
            format!("change ownership of {p} to the attacker"),
            DirectFault::FileChownAttacker { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Permission,
            p,
            format!("strip execute permission from {p}"),
            DirectFault::FilePermNoExec { path: p.into() },
        ),
        fs_fault(
            FsAttribute::SymbolicLink,
            p,
            format!("replace {p} with a symlink to {payload_path}"),
            DirectFault::SymlinkSwap {
                path: p.into(),
                target: payload_path,
            },
        ),
        fs_fault(
            FsAttribute::ContentInvariance,
            p,
            format!("replace the content of {p} with a trojan"),
            DirectFault::ModifyContent {
                path: p.into(),
                content: "#!trojan".into(),
            },
        ),
    ]
}

/// Direct faults for a delete interaction.
fn delete_faults(p: &str, s: &ScenarioMeta) -> Vec<ConcreteFault> {
    vec![
        fs_fault(
            FsAttribute::Existence,
            p,
            format!("delete {p} before the program does"),
            DirectFault::FileMakeMissing { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Ownership,
            p,
            format!("change ownership of {p} to the attacker"),
            DirectFault::FileChownAttacker { path: p.into() },
        ),
        fs_fault(
            FsAttribute::Permission,
            p,
            format!("restrict {p} to root-only access"),
            DirectFault::FilePermRestrict { path: p.into() },
        ),
        fs_fault(
            FsAttribute::SymbolicLink,
            p,
            format!("replace {p} with a symlink to {}", s.critical_target),
            DirectFault::SymlinkSwap {
                path: p.into(),
                target: s.critical_target.clone(),
            },
        ),
    ]
}

/// The direct faults applicable to one (operation, object) pair.
pub fn direct_faults_for(op: OpKind, object: &ObjectRef, ctx: &DirectContext<'_>) -> Vec<ConcreteFault> {
    let s = ctx.scenario;
    let mut out = match (op, object) {
        (OpKind::CreateFile | OpKind::CreateExcl | OpKind::WriteFile, ObjectRef::File(p)) => {
            create_faults(&ctx.absolutize(p), s)
        }
        (OpKind::ReadFile, ObjectRef::File(p)) => {
            let abs = ctx.absolutize(p);
            let re = ctx.reaccessed.contains(&abs);
            read_faults(&abs, s, re)
        }
        (OpKind::Chdir, ObjectRef::File(p)) => chdir_faults(&ctx.absolutize(p), s),
        (OpKind::Delete, ObjectRef::File(p)) => delete_faults(&ctx.absolutize(p), s),
        (OpKind::Stat, ObjectRef::File(p)) => {
            let abs = ctx.absolutize(p);
            let re = ctx.reaccessed.contains(&abs);
            // A bare stat probe gets the read-side faults minus content
            // (stat does not observe content).
            read_faults(&abs, s, re)
                .into_iter()
                .filter(|f| !f.id.starts_with("direct:fs:content"))
                .collect()
        }
        (OpKind::ListDir, ObjectRef::File(p)) => chdir_faults(&ctx.absolutize(p), s),
        (OpKind::Exec, ObjectRef::File(p)) => {
            let resolved = if p.contains('/') {
                Some(ctx.absolutize(p))
            } else {
                ctx.exec_resolutions.get(p).cloned()
            };
            match resolved {
                Some(bin) => exec_faults(&bin, s),
                None => Vec::new(),
            }
        }
        (OpKind::RegRead, ObjectRef::RegValue(key, value)) => {
            let swap = |slug: &str, target: &str, what: &str| ConcreteFault {
                id: format!("direct:reg:value-{slug}@{key}"),
                category: EaiCategory::Direct(DirectKind::Registry(RegAttribute::ValueInvariance)),
                semantic: None,
                description: format!("point {key}\\{value} at {what} ({target})"),
                payload: FaultPayload::Direct(DirectFault::RegistrySetValue {
                    key: key.clone(),
                    value: value.clone(),
                    new_value: target.to_string(),
                }),
            };
            vec![
                reg_fault(
                    RegAttribute::AclProtection,
                    key,
                    format!("make registry key {key} world-writable"),
                    DirectFault::RegistryOpenAcl { key: key.clone() },
                ),
                swap("critical", &s.critical_target, "a system-critical file"),
                swap("secret", &s.secret_target, "a confidential file"),
                swap("untrusted-dir", &s.attacker_home, "an attacker-controlled directory"),
                swap(
                    "attacker-file",
                    &format!("{}/payload.sh", s.attacker_home),
                    "an attacker-planted executable",
                ),
            ]
        }
        (OpKind::NetRecv, ObjectRef::NetPort(port)) => vec![
            net_fault(
                NetAttribute::MessageAuthenticity,
                &port.to_string(),
                format!(
                    "make the next message on :{port} actually come from {}",
                    s.attacker_host
                ),
                DirectFault::NetSpoofNext {
                    port: *port,
                    actual: s.attacker_host.clone(),
                },
            ),
            net_fault(
                NetAttribute::Protocol,
                &format!("{port}:omit"),
                format!("omit a protocol step on :{port}"),
                DirectFault::NetOmitStep { port: *port, idx: 1 },
            ),
            net_fault(
                NetAttribute::Protocol,
                &format!("{port}:extra"),
                format!("add an extra protocol step on :{port}"),
                DirectFault::NetDuplicateStep { port: *port, idx: 0 },
            ),
            net_fault(
                NetAttribute::Protocol,
                &format!("{port}:reorder"),
                format!("reorder protocol steps on :{port}"),
                DirectFault::NetSwapSteps {
                    port: *port,
                    a: 0,
                    b: 1,
                },
            ),
            net_fault(
                NetAttribute::Socket,
                &port.to_string(),
                format!("share the socket on :{port} with another process"),
                DirectFault::NetShareSocket {
                    port: *port,
                    with: "intruder-process".into(),
                },
            ),
        ],
        (OpKind::NetConnect, ObjectRef::Service(host, port)) => vec![
            net_fault(
                NetAttribute::ServiceAvailability,
                &format!("{host}:{port}"),
                format!("deny the service at {host}:{port}"),
                DirectFault::NetDenyService {
                    host: host.clone(),
                    port: *port,
                },
            ),
            net_fault(
                NetAttribute::EntityTrust,
                &format!("{host}:{port}"),
                format!("make the entity at {host}:{port} untrusted"),
                DirectFault::NetDistrustEntity {
                    host: host.clone(),
                    port: *port,
                },
            ),
        ],
        (OpKind::DnsResolve, ObjectRef::Host(host)) => vec![net_fault(
            NetAttribute::ServiceAvailability,
            &format!("dns:{host}"),
            "deny the DNS service".to_string(),
            DirectFault::DnsDeny,
        )],
        (OpKind::ProcRecv, ObjectRef::IpcChannel(c)) => vec![
            proc_fault(
                ProcAttribute::MessageAuthenticity,
                c,
                format!("make the next IPC message on {c} actually come from an intruder"),
                DirectFault::IpcSpoofNext {
                    channel: c.clone(),
                    actual: "intruder-process".into(),
                },
            ),
            proc_fault(
                ProcAttribute::Trust,
                c,
                format!("make the peer on {c} untrusted"),
                DirectFault::IpcDistrust { channel: c.clone() },
            ),
            proc_fault(
                ProcAttribute::ServiceAvailability,
                c,
                format!("deny the peer service on {c}"),
                DirectFault::IpcDeny { channel: c.clone() },
            ),
        ],
        _ => Vec::new(),
    };
    // Working-directory fault: applicable when the program names the object
    // with a relative path (Table 6, "start application in different
    // directory").
    if let ObjectRef::File(p) = object {
        if !path::is_absolute(p)
            && matches!(
                op,
                OpKind::CreateFile | OpKind::CreateExcl | OpKind::WriteFile | OpKind::ReadFile | OpKind::Delete
            )
        {
            let dir = format!("{}/cwd", ctx.scenario.attacker_home);
            out.push(fs_fault(
                FsAttribute::WorkingDirectory,
                p,
                format!("start the interaction from attacker-controlled directory {dir}"),
                DirectFault::WorkingDirectory { dir },
            ));
        }
    }
    out
}

/// The rows of paper Table 6, for the reproduction harness. The two
/// registry rows are this reproduction's documented NT extension (§4.2).
pub fn table6_rows() -> Vec<CatalogRow> {
    fn row(entity: &str, item: &str, injections: &[&str]) -> CatalogRow {
        CatalogRow {
            entity: entity.to_string(),
            item: item.to_string(),
            injections: injections.iter().map(std::string::ToString::to_string).collect(),
        }
    }
    vec![
        row("File System", "existence", &["delete an existing file or make a non-existing file exist"]),
        row("File System", "ownership", &["change ownership to the owner of the process, other normal users, or root"]),
        row("File System", "permission", &["flip the permission bit"]),
        row(
            "File System",
            "symbolic link",
            &["if the file is a symbolic link, change the target it links to; if the file is not a symbolic link, change it to a symbolic link"],
        ),
        row("File System", "file content invariance", &["modify file"]),
        row("File System", "file name invariance", &["change file name"]),
        row("File System", "working directory", &["start application in different directory"]),
        row(
            "Network",
            "message authenticity",
            &["make the message come from other network entity instead of where it is expected to come from"],
        ),
        row(
            "Network",
            "protocol",
            &["purposely violates underlying protocol by omitting a protocol step, adding an extra step, reordering steps"],
        ),
        row("Network", "socket", &["share the socket with another process"]),
        row("Network", "service availability", &["deny the service that application is asking for"]),
        row("Network", "entity trustability", &["change the entity with which the application interacts to a untrusted one"]),
        row(
            "Process",
            "message authenticity",
            &["make the message come from other process instead of where it is expected to come from"],
        ),
        row("Process", "process trustability", &["change the entity with which the application interacts to a untrusted one"]),
        row("Process", "service availability", &["deny the service that application is asking for"]),
        row("Registry (NT extension)", "ACL protection", &["make the registry key writable by everyone"]),
        row("Registry (NT extension)", "value invariance", &["point the stored value at a security-critical object"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(s: &'a ScenarioMeta, re: &'a [String], res: &'a BTreeMap<String, String>) -> DirectContext<'a> {
        DirectContext {
            scenario: s,
            reaccessed: re,
            exec_resolutions: res,
            cwd: "/work",
        }
    }

    #[test]
    fn create_gets_the_four_lpr_attributes() {
        let s = ScenarioMeta::default();
        let res = BTreeMap::new();
        let faults = direct_faults_for(
            OpKind::CreateFile,
            &ObjectRef::File("/tmp/sp".into()),
            &ctx(&s, &[], &res),
        );
        assert_eq!(faults.len(), 4);
        let attrs: Vec<&str> = faults
            .iter()
            .map(|f| f.id.split(':').nth(2).unwrap().split('@').next().unwrap())
            .collect();
        assert_eq!(attrs, vec!["existence", "ownership", "permission", "symlink"]);
    }

    #[test]
    fn read_gets_five_without_reaccess_six_with() {
        let s = ScenarioMeta::default();
        let res = BTreeMap::new();
        let f1 = direct_faults_for(
            OpKind::ReadFile,
            &ObjectRef::File("/etc/cf".into()),
            &ctx(&s, &[], &res),
        );
        assert_eq!(f1.len(), 5);
        let re = vec!["/etc/cf".to_string()];
        let f2 = direct_faults_for(
            OpKind::ReadFile,
            &ObjectRef::File("/etc/cf".into()),
            &ctx(&s, &re, &res),
        );
        assert_eq!(f2.len(), 6);
        assert!(f2.iter().any(|f| f.id.starts_with("direct:fs:name")));
    }

    #[test]
    fn bare_exec_resolves_through_hint() {
        let s = ScenarioMeta::default();
        let mut res = BTreeMap::new();
        let none = direct_faults_for(OpKind::Exec, &ObjectRef::File("tar".into()), &ctx(&s, &[], &res));
        assert!(none.is_empty(), "unknown bare name yields no direct faults");
        res.insert("tar".to_string(), "/usr/local/bin/tar".to_string());
        let some = direct_faults_for(OpKind::Exec, &ObjectRef::File("tar".into()), &ctx(&s, &[], &res));
        assert_eq!(some.len(), 5);
        assert!(some.iter().all(|f| f.id.contains("/usr/local/bin/tar")));
    }

    #[test]
    fn relative_paths_gain_workdir_fault_and_absolutize() {
        let s = ScenarioMeta::default();
        let res = BTreeMap::new();
        let faults = direct_faults_for(
            OpKind::CreateFile,
            &ObjectRef::File("out.txt".into()),
            &ctx(&s, &[], &res),
        );
        assert_eq!(faults.len(), 5);
        assert!(faults.iter().any(|f| f.id.starts_with("direct:fs:workdir")));
        assert!(faults.iter().any(|f| f.id.contains("/work/out.txt")));
    }

    #[test]
    fn network_and_process_counts() {
        let s = ScenarioMeta::default();
        let res = BTreeMap::new();
        let c = ctx(&s, &[], &res);
        assert_eq!(direct_faults_for(OpKind::NetRecv, &ObjectRef::NetPort(79), &c).len(), 5);
        assert_eq!(
            direct_faults_for(OpKind::NetConnect, &ObjectRef::Service("h".into(), 25), &c).len(),
            2
        );
        assert_eq!(
            direct_faults_for(OpKind::DnsResolve, &ObjectRef::Host("h".into()), &c).len(),
            1
        );
        assert_eq!(
            direct_faults_for(OpKind::ProcRecv, &ObjectRef::IpcChannel("c".into()), &c).len(),
            3
        );
        assert_eq!(
            direct_faults_for(OpKind::RegRead, &ObjectRef::RegValue("K".into(), "v".into()), &c).len(),
            5
        );
    }

    #[test]
    fn output_ops_get_no_direct_faults() {
        let s = ScenarioMeta::default();
        let res = BTreeMap::new();
        let c = ctx(&s, &[], &res);
        assert!(direct_faults_for(OpKind::Print, &ObjectRef::Terminal, &c).is_empty());
        assert!(direct_faults_for(OpKind::Getenv, &ObjectRef::EnvVar("PATH".into()), &c).is_empty());
    }

    #[test]
    fn table6_row_count_includes_extension() {
        assert_eq!(table6_rows().len(), 17);
    }
}
