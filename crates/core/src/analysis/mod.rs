//! Static EAI-site analysis: prove fault relevance *before* execution.
//!
//! The paper derives its perturbation points from a static model of
//! environment–application interactions (§3.3 steps 1–3); the engine's
//! planner, by contrast, enumerates every catalog fault against every
//! traced site and relies on execution to discover that many of them
//! cannot matter. This module closes that gap with three artifacts:
//!
//! 1. **A site model.** [`statics::static_model`] walks a
//!    [`crate::corpus::BehaviorScript`] and its
//!    [`crate::engine::spec::WorldSpec`] *without executing*, producing the
//!    statically reachable site set with per-site facts (path aliasing
//!    through symlink chains, privilege context, input taint, re-read /
//!    TOCTTOU windows). For hand-written applications — which exist as
//!    code, not data — the clean-run trace *is* the model (the paper's
//!    step-2 execution trace), wrapped by [`AppAnalysis`].
//!
//! 2. **A fault-relevance relation.** [`AppAnalysis::classify`] maps each
//!    planned `fault × site × occurrence` job to [`Relevance::Relevant`],
//!    [`Relevance::ProvablyInert`] (with a machine-checkable
//!    [`Justification`]), or [`Relevance::Unknown`]. The planner drops only
//!    `ProvablyInert` jobs (see `CampaignOptions::static_prune`), recording
//!    them as `pruned` replays whose outcome is synthesized from the clean
//!    run — sound because an inert fault's run is, by construction,
//!    byte-identical to the clean run.
//!
//! 3. **A world linter.** [`lint`] checks a world spec against the model
//!    and emits stable diagnostics (`EPA0001`…`EPA0005`) with severities,
//!    rendered and JSON output — `reproduce -- lint` in the CLI.
//!
//! # Soundness of `ProvablyInert`
//!
//! Everything rests on determinism: an injected run and the clean run are
//! byte-identical up to the moment the fault first acts. Four proof shapes
//! are used, each carried as a [`Justification`]:
//!
//! - **State no-op** (direct faults). The fault is applied to a scratch
//!   copy of the pristine world; if the serialized file-system, registry,
//!   and network state is unchanged, the application is a no-op *on the
//!   pristine state*. The proof transfers to injection time iff nothing in
//!   the clean-trace prefix before the strike point could have changed the
//!   state the fault reads (its *guard set*): no mutation of the target
//!   path, no alias-structure change (rename/symlink/unlink-of-a-link),
//!   no `..`-ambiguity. When any of those occur the job stays
//!   [`Relevance::Unknown`] and executes normally.
//! - **Grants preserved** (the chown direct faults). Re-owning a file
//!   *does* change state, but the change is unobservable when the target
//!   is a plain, alias-free file whose *untrusted-owner* status does not
//!   flip under the new owner (the `Untrusted` label carries only the
//!   path, so equal status means equal labels), every at-or-after-strike
//!   touch of it is a successful content read (reads are the only file
//!   accesses whose audit record omits the owner), and the read grant is
//!   identical under the old and new ownership for every credential that
//!   performs one plus the invoker (whose read grant decides the `Secret`
//!   label).
//! - **Never fires** (indirect faults). An indirect fault strikes the
//!   first *successful* receive at its site matching its semantic (or, for
//!   semantic-free faults, its exact occurrence). If the clean trace has no
//!   such successful event, the hook never mutates anything and the whole
//!   run replays the clean outcome with `applied: false`.
//! - **Identity transform** (indirect faults). The fault fires, but its
//!   transform maps the value received at the strike point to itself —
//!   checked by running the *actual* [`crate::perturb::IndirectFault`]
//!   mutation on the value recovered from the pristine world (environment
//!   variables and argv are immutable for the whole run; registry values
//!   are guarded against pre-strike writes). `set_bytes` preserves labels,
//!   so an identical byte string means an identical payload.
//!
//! Both proofs are cross-checked dynamically: the corpus differential
//! harness runs every scenario with pruning on and off and asserts
//! byte-identical verdict sets, and `tests/props_analysis.rs` force-runs
//! every pruned job and compares it against its synthesized record.

pub mod lint;
pub mod statics;

pub use lint::{lint_scenario, lint_setup, Diagnostic, LintReport, Severity};
pub use statics::{static_model, StaticModel, StaticSite};

use shim_sync::sync::Mutex;
use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use epa_sandbox::audit::AuditEvent;
use epa_sandbox::cred::{Credentials, Gid, Uid};
use epa_sandbox::data::Data;
use epa_sandbox::fs::Vfs;
use epa_sandbox::mode::Access;
use epa_sandbox::os::Os;
use epa_sandbox::path;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::{ObjectRef, OpKind, SiteId, TraceEvent};

use crate::campaign::{RunOutcome, TestSetup};
use crate::engine::planner::{fnv1a, RunDigest};
use crate::inject::InjectionPlan;
use crate::perturb::{DirectFault, FaultPayload, IndirectFault};

/// The machine-checkable reason a fault is provably inert.
///
/// Justifications are data, not prose: each one names the exact facts a
/// checker (or a force-run, as `tests/props_analysis.rs` does) can verify
/// independently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Justification {
    /// Applying the direct fault to the pristine world changes no
    /// file-system, registry, or network state, and no clean-trace event
    /// before the strike point touches the fault's guard set — so applying
    /// it mid-run is the same no-op.
    StateNoOp {
        /// The fault's guard paths (physical forms).
        guards: Vec<String>,
        /// Clean-trace events checked against the guard set (the strike
        /// point's sequence number — everything before it was scanned).
        prefix_len: usize,
        /// Whether the (no-op) application reports success, i.e. the
        /// `applied` flag the synthesized record carries.
        applies_cleanly: bool,
    },
    /// Chowning the target to `root:root` preserves every access decision
    /// the rest of the run makes: the target is a plain, alias-free file
    /// whose owner is already root or the invoker (so the `Untrusted`
    /// label test is unchanged), every at-or-after-strike touch of it is a
    /// successful content read, and the read grant is unchanged for every
    /// credential that performs one — and for the invoker, whose read
    /// grant decides the `Secret` label.
    GrantsPreserved {
        /// The target's physical path.
        path: String,
        /// Successful at-or-after-strike reads verified.
        suffix_reads: usize,
        /// Credentials checked for read-grant equivalence.
        creds_checked: usize,
    },
    /// The indirect fault's trigger never occurs: no successful receive at
    /// the site matches its semantic/occurrence in the clean trace, so the
    /// hook never rewrites any value.
    NeverFires {
        /// The targeted site.
        site: String,
        /// The targeted occurrence (meaningful for semantic-free faults).
        occurrence: usize,
        /// Successful matching events found in the clean trace (always 0).
        matching_ok_events: usize,
    },
    /// The indirect fault fires, but its transform maps the received value
    /// to itself: the rewrite is byte-identical and label-preserving, so
    /// the application sees exactly the clean payload (with
    /// `applied: true`).
    IdentityTransform {
        /// The strike site.
        site: String,
        /// Where the strike value was recovered from (`env:NAME`, `argv`,
        /// `reg:KEY\VALUE`).
        source: String,
        /// Candidate values verified as fixed points of the transform.
        values_checked: usize,
    },
}

/// The relevance of one planned fault job, as far as static reasoning can
/// tell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relevance {
    /// The fault demonstrably perturbs state or input; the run must
    /// execute.
    Relevant,
    /// The run provably replays the clean outcome; executing it would be
    /// wasted work. Carries the synthesized `applied` flag and the proof.
    ProvablyInert {
        /// Whether the (inert) fault would still report "applied".
        applied: bool,
        /// The machine-checkable proof.
        justification: Justification,
    },
    /// Static reasoning could not decide; the run executes normally.
    Unknown {
        /// Why the analysis gave up (diagnostic, not proof).
        reason: String,
    },
}

impl Relevance {
    /// True for [`Relevance::ProvablyInert`].
    pub fn is_inert(&self) -> bool {
        matches!(self, Relevance::ProvablyInert { .. })
    }
}

/// One clean-trace event with the derived facts relevance checks consume.
#[derive(Debug, Clone)]
struct EventFact {
    seq: usize,
    site: SiteId,
    occurrence: usize,
    op: OpKind,
    object: ObjectRef,
    /// Physical forms of a file object: (final-symlink-kept, fully
    /// resolved), both against the *pristine* world.
    physical: Option<(String, String)>,
    semantic: Option<epa_sandbox::trace::InputSemantic>,
    ok: bool,
}

impl EventFact {
    fn matches_guard(&self, guard: &str) -> bool {
        let Some((nofollow, follow)) = &self.physical else {
            return false;
        };
        if nofollow == guard || follow == guard {
            return true;
        }
        // Deleting an ancestor directory removes the guarded path with it.
        if self.op == OpKind::Delete {
            let prefix = format!("{}/", follow.trim_end_matches('/'));
            if guard.starts_with(&prefix) {
                return true;
            }
        }
        false
    }
}

/// File-system operations that can change world state (the guard-set scan
/// treats every other op as a pure read).
fn mutates_fs(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::CreateFile
            | OpKind::CreateExcl
            | OpKind::WriteFile
            | OpKind::Delete
            | OpKind::Mkdir
            | OpKind::Chmod
            | OpKind::Chown
            | OpKind::Symlink
            | OpKind::Rename
    )
}

/// Operations that consume or mutate network/IPC state mid-run.
fn mutates_net(op: OpKind) -> bool {
    matches!(
        op,
        OpKind::NetConnect | OpKind::NetSend | OpKind::NetRecv | OpKind::ProcRecv
    )
}

/// What part of the world a direct fault reads and writes.
enum Footprint {
    /// File-system fault over these target paths.
    Fs(Vec<String>),
    /// Registry fault (conservatively keyed on any registry write).
    Registry,
    /// Network/IPC/DNS fault (conservatively keyed on any net activity).
    Net,
    /// Process-state fault (working directory) — never analyzed.
    Process,
}

fn footprint(fault: &DirectFault) -> Footprint {
    match fault {
        DirectFault::FileMakeExist { path }
        | DirectFault::FileMakeMissing { path }
        | DirectFault::FileChownAttacker { path }
        | DirectFault::FileChownRoot { path }
        | DirectFault::FilePermRestrict { path }
        | DirectFault::FilePermOpen { path }
        | DirectFault::FilePermNoExec { path }
        | DirectFault::ModifyContent { path, .. }
        | DirectFault::RenameAway { path } => Footprint::Fs(vec![path.clone()]),
        DirectFault::SymlinkSwap { path, target } => Footprint::Fs(vec![path.clone(), target.clone()]),
        DirectFault::WorkingDirectory { .. } => Footprint::Process,
        DirectFault::RegistryOpenAcl { .. } => Footprint::Registry,
        // The planted value may also create a payload file, so this fault
        // straddles registry and file system; the fs guard is the payload
        // path itself.
        DirectFault::RegistrySetValue { .. } => Footprint::Registry,
        DirectFault::NetSpoofNext { .. }
        | DirectFault::NetOmitStep { .. }
        | DirectFault::NetDuplicateStep { .. }
        | DirectFault::NetSwapSteps { .. }
        | DirectFault::NetShareSocket { .. }
        | DirectFault::NetDenyService { .. }
        | DirectFault::NetDistrustEntity { .. }
        | DirectFault::DnsDeny
        | DirectFault::IpcSpoofNext { .. }
        | DirectFault::IpcDistrust { .. }
        | DirectFault::IpcDeny { .. } => Footprint::Net,
        // Future catalog growth lands here: never analyzed, always run.
        #[allow(unreachable_patterns)]
        _ => Footprint::Process,
    }
}

/// Content fingerprint of the mutable world substrate (file system,
/// registry, network) — the state a direct fault can touch.
fn state_fingerprint(os: &Os) -> u64 {
    let fs = serde_json::to_string(&os.fs).expect("vfs serializes");
    let registry = serde_json::to_string(&os.registry).expect("registry serializes");
    let net = serde_json::to_string(&os.net).expect("network serializes");
    fnv1a(format!("{fs}\n{registry}\n{net}").as_bytes())
}

/// Physical forms of `path` against `fs`: `(final-symlink-kept, fully
/// resolved)`. Missing suffixes are appended lexically to the deepest
/// resolvable ancestor, so two spellings of the same missing file still
/// collapse onto one physical name.
fn physical_forms(fs: &Vfs, p: &str) -> (String, String) {
    let nofollow = match fs.walk(p, false, None) {
        Ok(w) => w.physical.to_string(),
        Err(_) => lexical_fallback(fs, p),
    };
    let follow = match fs.walk(p, true, None) {
        Ok(w) => w.physical.to_string(),
        Err(_) => nofollow.clone(),
    };
    (nofollow, follow)
}

fn lexical_fallback(fs: &Vfs, p: &str) -> String {
    let cleaned = path::clean(p);
    let Some(parent) = path::parent(&cleaned) else {
        return cleaned;
    };
    let Some(name) = path::file_name(&cleaned) else {
        return cleaned;
    };
    let resolved_parent = match fs.walk(&parent, true, None) {
        Ok(w) => w.physical.to_string(),
        Err(_) => lexical_fallback(fs, &parent),
    };
    if resolved_parent == "/" {
        format!("/{name}")
    } else {
        format!("{resolved_parent}/{name}")
    }
}

/// The per-application analysis: clean-run facts plus the pristine world,
/// ready to classify any planned fault job.
///
/// Built once per campaign plan (the clean run the plan already performs is
/// the model input) and shared read-only afterwards; classifications are
/// memoized per canonical job content.
pub struct AppAnalysis {
    events: Vec<EventFact>,
    by_site: BTreeMap<SiteId, Vec<usize>>,
    /// First sequence number after which the pristine alias map is no
    /// longer trustworthy (a rename/symlink/unlink-of-a-link or a
    /// `..`-carrying object appeared), `usize::MAX` when the whole trace is
    /// alias-stable.
    hazard_from: usize,
    pristine: Os,
    pristine_fp: u64,
    /// The spawn argument vector (immutable for the whole run).
    setup_args: Vec<String>,
    /// The spawn environment (immutable: the sandbox has no `setenv`).
    setup_env: BTreeMap<String, String>,
    /// Credentials that performed each successful content read in the
    /// clean run, keyed by physical path (from the audit log).
    read_creds: BTreeMap<String, Vec<Credentials>>,
    clean_exit: Option<i32>,
    clean_crashed: Option<String>,
    clean_audit_events: usize,
    clean_violations: Vec<epa_sandbox::policy::Verdict>,
    memo: Mutex<BTreeMap<String, Relevance>>,
}

impl std::fmt::Debug for AppAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppAnalysis")
            .field("events", &self.events.len())
            .field("sites", &self.by_site.len())
            .field("hazard_from", &self.hazard_from)
            .finish()
    }
}

impl AppAnalysis {
    /// Builds the analysis from a setup's pristine world and its clean-run
    /// outcome (the trace must come from an uninjected run).
    pub fn from_clean_run(setup: &TestSetup, clean: &RunOutcome) -> AppAnalysis {
        let pristine = setup.world.clone();
        let mut events = Vec::new();
        let mut by_site: BTreeMap<SiteId, Vec<usize>> = BTreeMap::new();
        let mut hazard_from = usize::MAX;
        // Relative spellings resolve against the working directory, which
        // starts at the spawn cwd and moves with each successful `Chdir` —
        // the same join the sandbox performs.
        let mut cwd = setup.cwd.clone();
        for ev in clean.os.trace.events() {
            let fact = Self::fact_of(&pristine.fs, &cwd, ev);
            if hazard_from == usize::MAX && Self::is_hazard(&pristine.fs, &fact) {
                hazard_from = fact.seq;
            }
            if fact.op == OpKind::Chdir && fact.ok {
                if let Some((_, follow)) = &fact.physical {
                    cwd = follow.clone();
                }
            }
            by_site.entry(fact.site.clone()).or_default().push(events.len());
            events.push(fact);
        }
        let pristine_fp = state_fingerprint(&pristine);
        let mut read_creds: BTreeMap<String, Vec<Credentials>> = BTreeMap::new();
        for ev in clean.os.audit.events() {
            if let AuditEvent::FileRead { path, by, .. } = ev {
                read_creds.entry(path.to_string()).or_default().push(*by);
            }
        }
        AppAnalysis {
            events,
            by_site,
            hazard_from,
            pristine,
            pristine_fp,
            setup_args: setup.args.clone(),
            setup_env: setup.env.clone(),
            read_creds,
            clean_exit: clean.exit,
            clean_crashed: clean.crashed.clone(),
            clean_audit_events: clean.os.audit.len(),
            clean_violations: clean.violations.clone(),
            memo: Mutex::new(BTreeMap::new()),
        }
    }

    fn fact_of(fs: &Vfs, cwd: &str, ev: &TraceEvent) -> EventFact {
        let physical = match &ev.object {
            ObjectRef::File(p) if path::is_absolute(p) => Some(physical_forms(fs, p)),
            ObjectRef::File(p) if !path::contains_dotdot(p) => Some(physical_forms(fs, &path::join(cwd, p))),
            _ => None,
        };
        EventFact {
            seq: ev.seq,
            site: ev.site.clone(),
            occurrence: ev.occurrence,
            op: ev.op,
            object: ev.object.clone(),
            physical,
            semantic: ev.semantic,
            ok: ev.ok,
        }
    }

    /// An event invalidates pristine-world alias reasoning when it changes
    /// (or may change) the link structure, or when its object cannot be
    /// resolved unambiguously.
    fn is_hazard(fs: &Vfs, fact: &EventFact) -> bool {
        match fact.op {
            OpKind::Rename | OpKind::Symlink => true,
            OpKind::Delete => {
                // Unlinking a symlink changes the alias map.
                if let ObjectRef::File(p) = &fact.object {
                    match (fs.walk(p, false, None), fs.walk(p, true, None)) {
                        (Ok(a), Ok(b)) => a.id != b.id,
                        (Ok(_), Err(_)) => true, // dangling link
                        _ => false,
                    }
                } else {
                    false
                }
            }
            _ => match &fact.object {
                // `..` may hop through a symlink'd ancestor; an object
                // that did not resolve has no trustworthy physical form.
                ObjectRef::File(p) => path::contains_dotdot(p) || fact.physical.is_none(),
                _ => false,
            },
        }
    }

    /// The clean-run outcome as a digest with an explicit `applied` flag —
    /// what a pruned job's record replays.
    fn clean_digest(&self, applied: bool) -> RunDigest {
        RunDigest {
            applied,
            exit: self.clean_exit,
            crashed: self.clean_crashed.clone(),
            audit_events: self.clean_audit_events,
            violations: self.clean_violations.clone(),
        }
    }

    /// Every distinct site the clean trace reached.
    pub fn traced_sites(&self) -> BTreeSet<SiteId> {
        self.by_site.keys().cloned().collect()
    }

    /// Physical paths the clean run touched (any file object, read or
    /// write), in pristine-world terms.
    pub fn touched_paths(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for ev in &self.events {
            if let Some((a, b)) = &ev.physical {
                out.insert(a.clone());
                out.insert(b.clone());
            }
        }
        out
    }

    /// Physical paths the clean run created or wrote.
    pub fn written_paths(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for ev in &self.events {
            if ev.ok && mutates_fs(ev.op) {
                if let Some((a, b)) = &ev.physical {
                    out.insert(a.clone());
                    out.insert(b.clone());
                }
            }
        }
        out
    }

    /// Static occurrence bound per site, from the clean trace.
    pub fn site_hits(&self) -> BTreeMap<SiteId, usize> {
        self.by_site.iter().map(|(s, evs)| (s.clone(), evs.len())).collect()
    }

    /// Classifies one planned job. Sound by construction: only jobs whose
    /// runs provably replay the clean outcome come back
    /// [`Relevance::ProvablyInert`].
    pub fn classify(&self, job: &InjectionPlan) -> Relevance {
        let key = format!(
            "{}#{}|{}",
            job.site,
            job.occurrence,
            serde_json::to_string(&job.fault).expect("faults serialize")
        );
        if let Some(hit) = self.memo.lock().expect("analysis memo poisoned").get(&key) {
            return hit.clone();
        }
        let result = match &job.fault.payload {
            FaultPayload::Direct(df) => self.classify_direct(job, df),
            FaultPayload::Indirect(_) => self.classify_indirect(job),
        };
        self.memo
            .lock()
            .expect("analysis memo poisoned")
            .insert(key, result.clone());
        result
    }

    /// The synthesized replay digest for a provably inert job, `None` for
    /// anything that must execute.
    pub fn pruned_digest(&self, job: &InjectionPlan) -> Option<RunDigest> {
        match self.classify(job) {
            Relevance::ProvablyInert { applied, .. } => Some(self.clean_digest(applied)),
            _ => None,
        }
    }

    fn strike_event(&self, site: &SiteId, occurrence: usize) -> Option<&EventFact> {
        self.by_site
            .get(site)?
            .iter()
            .map(|&i| &self.events[i])
            .find(|e| e.occurrence == occurrence)
    }

    fn classify_direct(&self, job: &InjectionPlan, df: &DirectFault) -> Relevance {
        let Some(strike) = self.strike_event(&job.site, job.occurrence) else {
            return Relevance::Unknown {
                reason: format!("site {}#{} absent from the clean trace", job.site, job.occurrence),
            };
        };
        let guards = match footprint(df) {
            Footprint::Process => {
                return Relevance::Unknown {
                    reason: "process-state faults are never analyzed statically".to_string(),
                }
            }
            Footprint::Registry => {
                if self
                    .events
                    .iter()
                    .take_while(|e| e.seq < strike.seq)
                    .any(|e| matches!(e.op, OpKind::RegWrite | OpKind::RegDelete))
                {
                    return Relevance::Unknown {
                        reason: "registry mutated before the strike point".to_string(),
                    };
                }
                Vec::new()
            }
            Footprint::Net => {
                if self
                    .events
                    .iter()
                    .take_while(|e| e.seq < strike.seq)
                    .any(|e| mutates_net(e.op))
                {
                    return Relevance::Unknown {
                        reason: "network state consumed before the strike point".to_string(),
                    };
                }
                Vec::new()
            }
            Footprint::Fs(targets) => {
                if strike.seq > 0 && self.hazard_from < strike.seq {
                    return Relevance::Unknown {
                        reason: format!("alias structure may change at clean-trace event {}", self.hazard_from),
                    };
                }
                let mut guards = Vec::new();
                for t in &targets {
                    if !path::is_absolute(t) || path::contains_dotdot(t) {
                        return Relevance::Unknown {
                            reason: format!("target `{t}` is not an unambiguous absolute path"),
                        };
                    }
                    let (nofollow, follow) = physical_forms(&self.pristine.fs, t);
                    if nofollow != follow {
                        // The target is itself a symlink: god-mode fault
                        // application and app-level access disagree on
                        // which object they touch.
                        return Relevance::Unknown {
                            reason: format!("target `{t}` resolves through a symlink"),
                        };
                    }
                    guards.push(follow);
                }
                for e in self.events.iter().take_while(|e| e.seq < strike.seq) {
                    if mutates_fs(e.op) && guards.iter().any(|g| e.matches_guard(g)) {
                        return Relevance::Unknown {
                            reason: format!("clean-trace event {} mutates guard path before the strike", e.seq),
                        };
                    }
                }
                guards
            }
        };
        // The guard set is clean: the fault meets exactly the pristine
        // state. Probe whether applying it there changes anything.
        let mut probe = self.pristine.clone();
        let applies_cleanly = df.apply(&mut probe, Pid(0)).is_ok();
        if state_fingerprint(&probe) == self.pristine_fp {
            return Relevance::ProvablyInert {
                applied: applies_cleanly,
                justification: Justification::StateNoOp {
                    guards,
                    prefix_len: strike.seq,
                    applies_cleanly,
                },
            };
        }
        // A chown fault changes state, but the change may still be
        // invisible to every remaining access.
        let new_owner = match df {
            DirectFault::FileChownRoot { .. } => Some((Uid::ROOT, Gid::ROOT)),
            DirectFault::FileChownAttacker { .. } => {
                let s = &self.pristine.scenario;
                Some((s.attacker, s.attacker_gid))
            }
            _ => None,
        };
        if let Some((no, ng)) = new_owner {
            if applies_cleanly {
                if let Some(justification) = self.chown_grants_preserved(&guards, strike.seq, no, ng) {
                    return Relevance::ProvablyInert {
                        applied: true,
                        justification,
                    };
                }
            }
        }
        Relevance::Relevant
    }

    /// Proof attempt for [`Justification::GrantsPreserved`]: re-owning
    /// `guards[0]` to `new_owner:new_group` at the strike point is
    /// unobservable.
    ///
    /// Requires the whole trace to be alias-stable (suffix spellings must
    /// keep resolving as in the pristine world), the target to be a plain
    /// non-symlink file whose *untrusted-owner* status does not flip (the
    /// `Untrusted` read label carries only the path, so equal status means
    /// equal labels), every at-or-after-strike event touching it to be a
    /// successful content read — the one file access whose audit record
    /// and payload omit the owner — and the read grant to be identical
    /// under the old and new ownership for the invoker (the `Secret`-label
    /// test) and for every credential the clean run's audit log shows
    /// reading the file.
    fn chown_grants_preserved(
        &self,
        guards: &[String],
        strike_seq: usize,
        new_owner: Uid,
        new_group: Gid,
    ) -> Option<Justification> {
        let [target] = guards else { return None };
        if self.hazard_from != usize::MAX {
            return None;
        }
        let walked = self.pristine.fs.walk(target, false, None).ok()?;
        let inode = self.pristine.fs.inode(walked.id).ok()?;
        if !inode.is_file() {
            return None;
        }
        let (owner, group, mode) = (inode.owner, inode.group, inode.mode);
        let invoker = self.pristine.scenario.invoker;
        let untrusted = |o: Uid| !o.is_root() && o != invoker;
        if untrusted(owner) != untrusted(new_owner) {
            return None;
        }
        let mut suffix_reads = 0usize;
        for e in self.events.iter().filter(|e| e.seq >= strike_seq) {
            if e.matches_guard(target) {
                if e.op == OpKind::ReadFile && e.ok {
                    suffix_reads += 1;
                } else {
                    return None;
                }
            }
        }
        let mut creds = vec![self.pristine.invoker_cred()];
        creds.extend(self.read_creds.get(target).into_iter().flatten().copied());
        for cred in &creds {
            if mode.grants(owner, group, cred, Access::Read) != mode.grants(new_owner, new_group, cred, Access::Read) {
                return None;
            }
        }
        Some(Justification::GrantsPreserved {
            path: target.clone(),
            suffix_reads,
            creds_checked: creds.len(),
        })
    }

    fn classify_indirect(&self, job: &InjectionPlan) -> Relevance {
        let Some(site_events) = self.by_site.get(&job.site) else {
            return Relevance::Unknown {
                reason: format!("site {} absent from the clean trace", job.site),
            };
        };
        let strike = match job.fault.semantic {
            // Semantic-matched faults strike the first successful receive
            // with that semantic, at any occurrence.
            Some(sem) => site_events
                .iter()
                .map(|&i| &self.events[i])
                .find(|e| e.ok && e.semantic == Some(sem)),
            // Semantic-free faults strike their exact occurrence.
            None => match self.strike_event(&job.site, job.occurrence) {
                Some(e) if e.ok => Some(e),
                Some(_) => None,
                None => {
                    return Relevance::Unknown {
                        reason: format!("site {}#{} absent from the clean trace", job.site, job.occurrence),
                    }
                }
            },
        };
        let Some(strike) = strike else {
            return Relevance::ProvablyInert {
                applied: false,
                justification: Justification::NeverFires {
                    site: job.site.to_string(),
                    occurrence: job.occurrence,
                    matching_ok_events: 0,
                },
            };
        };
        if let FaultPayload::Indirect(f) = &job.fault.payload {
            if let Some(justification) = self.identity_inert(f, strike) {
                return Relevance::ProvablyInert {
                    applied: true,
                    justification,
                };
            }
        }
        Relevance::Relevant
    }

    /// Proof attempt for [`Justification::IdentityTransform`]: the fault
    /// fires at `strike` but rewrites the received value to itself.
    ///
    /// The strike value is recovered from the pristine world — spawn
    /// environment and argv are immutable for the whole run (the sandbox
    /// has no `setenv`, and events before the strike are unperturbed), and
    /// registry values are guarded against pre-strike writes. The traced
    /// argv object does not say which index was read, so every argument
    /// must be a fixed point. The check runs the *actual*
    /// [`IndirectFault::apply_to_data`] mutation, which preserves labels,
    /// so byte equality means the payload is identical.
    fn identity_inert(&self, fault: &IndirectFault, strike: &EventFact) -> Option<Justification> {
        let (source, values): (String, Vec<String>) = match (strike.op, &strike.object) {
            (OpKind::Getenv, ObjectRef::EnvVar(name)) => {
                (format!("env:{name}"), vec![self.setup_env.get(name)?.clone()])
            }
            (OpKind::ReadArg, ObjectRef::Args) => {
                if self.setup_args.is_empty() {
                    return None;
                }
                ("argv".to_string(), self.setup_args.clone())
            }
            (OpKind::RegRead, ObjectRef::RegValue(key, value)) => {
                if self
                    .events
                    .iter()
                    .any(|e| e.seq < strike.seq && matches!(e.op, OpKind::RegWrite | OpKind::RegDelete))
                {
                    return None;
                }
                let (text, _) = self.pristine.registry.get_value(key, value).ok()?;
                (format!("reg:{key}\\{value}"), vec![text])
            }
            _ => return None,
        };
        for v in &values {
            let mut data = Data::from(v.clone());
            fault.apply_to_data(&mut data);
            if data.text() != *v {
                return None;
            }
        }
        Some(Justification::IdentityTransform {
            site: strike.site.to_string(),
            source,
            values_checked: values.len(),
        })
    }

    /// Relevance tallies over a job list: `(relevant, inert, unknown)`.
    pub fn tally(&self, jobs: &[InjectionPlan]) -> (usize, usize, usize) {
        let mut relevant = 0;
        let mut inert = 0;
        let mut unknown = 0;
        for job in jobs {
            match self.classify(job) {
                Relevance::Relevant => relevant += 1,
                Relevance::ProvablyInert { .. } => inert += 1,
                Relevance::Unknown { .. } => unknown += 1,
            }
        }
        (relevant, inert, unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_once, Campaign, CampaignOptions};
    use crate::engine::spec::WorldSpec;
    use epa_sandbox::app::Application;
    use epa_sandbox::cred::{Gid, Uid};
    use epa_sandbox::os::Os;
    use epa_sandbox::trace::InputSemantic;

    /// Reads a config that exists, probes one that doesn't, then writes a
    /// report — a miniature of the standard apps' shapes.
    struct Probe;
    impl Application for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let _ = os.sys_read_file(pid, "probe:conf", "/etc/probe.conf");
            let _ = os.sys_read_file(pid, "probe:opt", "/etc/probe.local");
            let _ = os.sys_getenv(pid, "probe:env", "PROBE_MODE", InputSemantic::EnvValue);
            let _ = os.sys_write_file(pid, "probe:out", "/var/probe.out", "report", 0o644);
            0
        }
    }

    fn setup() -> crate::campaign::TestSetup {
        let scenario = epa_sandbox::os::ScenarioMeta::default();
        WorldSpec::builder()
            .user("root", Uid::ROOT, Gid::ROOT, "/root")
            .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
            .root_file("/etc/probe.conf", "mode=safe", 0o644)
            .dir("/var", Uid::ROOT, Gid::ROOT, 0o755)
            .build()
            .materialize()
            .expect("probe world materializes")
    }

    fn analysis_of(setup: &crate::campaign::TestSetup) -> AppAnalysis {
        let clean = run_once(setup, &Probe, None);
        AppAnalysis::from_clean_run(setup, &clean)
    }

    fn job(site: &str, occurrence: usize, fault: crate::perturb::ConcreteFault) -> InjectionPlan {
        InjectionPlan {
            site: SiteId::new(site),
            occurrence,
            fault,
        }
    }

    #[test]
    fn missing_file_direct_noops_are_inert_and_existing_targets_are_relevant() {
        let setup = setup();
        let analysis = analysis_of(&setup);
        let mk = |df: DirectFault| crate::perturb::ConcreteFault {
            id: "t".into(),
            category: crate::model::EaiCategory::Other,
            semantic: None,
            description: String::new(),
            payload: FaultPayload::Direct(df),
        };
        // Removing a file that is not there is a no-op.
        let inert = analysis.classify(&job(
            "probe:opt",
            0,
            mk(DirectFault::FileMakeMissing {
                path: "/etc/probe.local".into(),
            }),
        ));
        assert!(inert.is_inert(), "got {inert:?}");
        // Removing a file that *is* there changes the world.
        let relevant = analysis.classify(&job(
            "probe:conf",
            0,
            mk(DirectFault::FileMakeMissing {
                path: "/etc/probe.conf".into(),
            }),
        ));
        assert_eq!(relevant, Relevance::Relevant);
        // Chowning an already-root-owned file to root is a no-op.
        let chown = analysis.classify(&job(
            "probe:conf",
            0,
            mk(DirectFault::FileChownRoot {
                path: "/etc/probe.conf".into(),
            }),
        ));
        assert!(chown.is_inert(), "got {chown:?}");
        // Working-directory faults are never analyzed.
        let wd = analysis.classify(&job(
            "probe:conf",
            0,
            mk(DirectFault::WorkingDirectory { dir: "/tmp".into() }),
        ));
        assert!(matches!(wd, Relevance::Unknown { .. }));
    }

    #[test]
    fn failed_receive_makes_indirect_faults_inert() {
        let setup = setup();
        let analysis = analysis_of(&setup);
        let indirect = |sem| crate::perturb::ConcreteFault {
            id: "t".into(),
            category: crate::model::EaiCategory::Other,
            semantic: sem,
            description: String::new(),
            payload: FaultPayload::Indirect(crate::perturb::IndirectFault::MakeRelative),
        };
        // PROBE_MODE is unset: the getenv fails, nothing to rewrite.
        let env = analysis.classify(&job("probe:env", 0, indirect(Some(InputSemantic::EnvValue))));
        assert!(env.is_inert(), "got {env:?}");
        // The existing config read succeeds: the fault fires.
        let conf = analysis.classify(&job("probe:conf", 0, indirect(None)));
        assert_eq!(conf, Relevance::Relevant);
        // The missing-file read fails: occurrence-matched fault never fires.
        let opt = analysis.classify(&job("probe:opt", 0, indirect(None)));
        assert!(opt.is_inert(), "got {opt:?}");
    }

    #[test]
    fn pruned_digest_replays_the_clean_outcome() {
        let setup = setup();
        let clean = run_once(&setup, &Probe, None);
        let analysis = AppAnalysis::from_clean_run(&setup, &clean);
        let fault = crate::perturb::ConcreteFault {
            id: "t".into(),
            category: crate::model::EaiCategory::Other,
            semantic: None,
            description: String::new(),
            payload: FaultPayload::Direct(DirectFault::FileMakeMissing {
                path: "/etc/probe.local".into(),
            }),
        };
        let digest = analysis
            .pruned_digest(&job("probe:opt", 0, fault.clone()))
            .expect("provably inert");
        assert_eq!(digest.exit, clean.exit);
        assert_eq!(digest.audit_events, clean.os.audit.len());
        assert_eq!(digest.violations.len(), clean.violations.len());
        // The no-op still "applies" (the god-mode mutation reports Ok).
        assert!(digest.applied);
        // Force-run the job: the real record must match the synthesis.
        let campaign = Campaign::build(&Probe, &setup, CampaignOptions::default());
        let record = campaign.run_job(&job("probe:opt", 0, fault));
        assert_eq!(record.applied, digest.applied);
        assert_eq!(record.exit, digest.exit);
        assert_eq!(record.audit_events, digest.audit_events);
        assert_eq!(record.violations.len(), digest.violations.len());
    }

    #[test]
    fn guard_mutation_before_the_strike_demotes_to_unknown() {
        struct WriteThenStat;
        impl Application for WriteThenStat {
            fn name(&self) -> &'static str {
                "write-then-stat"
            }
            fn run(&self, os: &mut Os, pid: Pid) -> i32 {
                let _ = os.sys_write_file(pid, "w:make", "/var/w.tmp", "x", 0o644);
                let _ = os.sys_stat(pid, "w:check", "/var/w.tmp");
                0
            }
        }
        let scenario = epa_sandbox::os::ScenarioMeta::default();
        let setup = WorldSpec::builder()
            .user("root", Uid::ROOT, Gid::ROOT, "/root")
            .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
            .dir("/var", Uid::ROOT, Gid::ROOT, 0o755)
            .build()
            .materialize()
            .expect("world materializes");
        let clean = run_once(&setup, &WriteThenStat, None);
        let analysis = AppAnalysis::from_clean_run(&setup, &clean);
        let fault = crate::perturb::ConcreteFault {
            id: "t".into(),
            category: crate::model::EaiCategory::Other,
            semantic: None,
            description: String::new(),
            payload: FaultPayload::Direct(DirectFault::FileMakeMissing {
                path: "/var/w.tmp".into(),
            }),
        };
        // At the stat site the file exists *because the app created it*:
        // the pristine-world no-op proof must not transfer.
        let v = analysis.classify(&job("w:check", 0, fault));
        assert!(matches!(v, Relevance::Unknown { .. }), "got {v:?}");
    }
}
